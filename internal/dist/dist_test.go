package dist

import (
	"context"
	"math"
	"testing"

	"flashmob/internal/algo"
	"flashmob/internal/core"
	"flashmob/internal/gen"
	"flashmob/internal/graph"
	"flashmob/internal/obs"
	"flashmob/internal/part"
	"flashmob/internal/shard"
)

func testGraph(t *testing.T, n uint32, seed uint64) *graph.CSR {
	t.Helper()
	dir, err := gen.PowerLaw(gen.PowerLawConfig{
		NumVertices: n, AvgDegree: 6, Alpha: 0.7, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var edges []graph.Edge
	for v := uint32(0); v < dir.NumVertices(); v++ {
		for _, w := range dir.Neighbors(v) {
			if v != w {
				edges = append(edges, graph.Edge{Src: v, Dst: w})
			}
		}
	}
	res, err := graph.Build(edges, graph.BuildOptions{Undirected: true, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	return res.Graph
}

func TestDistValidWalks(t *testing.T) {
	g := testGraph(t, 1000, 1)
	for _, parts := range []int{1, 3, 8} {
		e, err := New(g, algo.DeepWalk(), Config{Partitions: parts, Seed: 2, RecordPaths: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(500, 12)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalSteps != 6000 {
			t.Fatalf("parts=%d: TotalSteps = %d", parts, res.TotalSteps)
		}
		for id, p := range res.Paths {
			if len(p) != 13 {
				t.Fatalf("parts=%d walker %d: path length %d, want 13", parts, id, len(p))
			}
			for i := 0; i+1 < len(p); i++ {
				if p[i] == p[i+1] && g.Degree(p[i]) == 0 {
					continue
				}
				if !g.HasEdge(p[i], p[i+1]) {
					t.Fatalf("parts=%d walker %d: %d→%d not an edge", parts, id, p[i], p[i+1])
				}
			}
		}
	}
}

func TestDistStationaryDistribution(t *testing.T) {
	g := testGraph(t, 250, 3)
	e, err := New(g, algo.DeepWalk(), Config{Partitions: 5, Seed: 4, RecordPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(40000, 15)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, g.NumVertices())
	for _, p := range res.Paths {
		counts[p[len(p)-1]]++
	}
	sumDeg := float64(g.NumEdges())
	for v := uint32(0); v < 10; v++ {
		want := float64(g.Degree(v)) / sumDeg
		got := counts[v] / float64(len(res.Paths))
		if want > 0.01 && math.Abs(got-want) > 0.25*want {
			t.Errorf("vertex %d: share %.4f, stationary %.4f", v, got, want)
		}
	}
}

func TestDistStepAccounting(t *testing.T) {
	g := testGraph(t, 800, 5)
	e, err := New(g, algo.DeepWalk(), Config{Partitions: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Every step is either local or message-borne (finishing cross-steps
	// carry no message, so allow up to one un-messaged step per walker).
	total := res.LocalMoves + res.Messages
	if total > res.TotalSteps {
		t.Errorf("accounted %d steps > total %d", total, res.TotalSteps)
	}
	if total < res.TotalSteps-res.Walkers {
		t.Errorf("accounted %d steps, want ≥ %d", total, res.TotalSteps-res.Walkers)
	}
	if res.Messages == 0 {
		t.Error("no migrations on a 4-partition graph?")
	}
}

func TestDistSinglePartitionNoMessages(t *testing.T) {
	g := testGraph(t, 300, 7)
	e, err := New(g, algo.DeepWalk(), Config{Partitions: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(200, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 0 {
		t.Errorf("single partition sent %d messages", res.Messages)
	}
	if res.Supersteps != 1 {
		t.Errorf("single partition took %d supersteps, want 1 (full chaining)", res.Supersteps)
	}
}

func TestDistLocalChainingReducesSupersteps(t *testing.T) {
	// KnightKing's optimization: with chaining, walkers burn many steps
	// per superstep; without it, supersteps == walk length.
	g := testGraph(t, 600, 9)
	run := func(disable bool) *Result {
		e, err := New(g, algo.DeepWalk(), Config{
			Partitions: 4, Seed: 10, DisableLocalChaining: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(500, 20)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	chained := run(false)
	naive := run(true)
	if naive.Supersteps != 20 {
		t.Errorf("unchained supersteps = %d, want 20", naive.Supersteps)
	}
	if chained.Supersteps >= naive.Supersteps {
		t.Errorf("chaining did not reduce supersteps: %d vs %d", chained.Supersteps, naive.Supersteps)
	}
	if chained.LocalMoves == 0 {
		t.Error("chaining recorded no local moves")
	}
}

func TestDistNode2Vec(t *testing.T) {
	g := testGraph(t, 400, 11)
	e, err := New(g, algo.Node2Vec(0.5, 2), Config{Partitions: 3, Seed: 12, RecordPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(300, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Paths {
		for i := 0; i+1 < len(p); i++ {
			if p[i] == p[i+1] && g.Degree(p[i]) == 0 {
				continue
			}
			if !g.HasEdge(p[i], p[i+1]) {
				t.Fatalf("node2vec %d→%d not an edge", p[i], p[i+1])
			}
		}
	}
}

func TestDistErrors(t *testing.T) {
	g := testGraph(t, 100, 13)
	if _, err := New(g, algo.Spec{Order: 7, Steps: 1}, Config{}); err == nil {
		t.Error("bad spec accepted")
	}
	spec := algo.DeepWalk()
	spec.Weighted = true
	if _, err := New(g, spec, Config{}); err == nil {
		t.Error("weighted accepted")
	}
	e, err := New(g, algo.DeepWalk(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(10, 1<<17); err == nil {
		t.Error("oversized step count accepted")
	}
}

// TestDistMessagesMatchShardEmigrants cross-validates the two engines'
// crossing accounting: on an out-degree-1 ring every walker's trajectory
// is v, v+1, v+2, ... regardless of RNG draws, and both engines place
// walker j at vertex j — so with the distributed engine sitting on the
// shard topology's exact cuts (Config.Bounds = the topology's range
// starts) and local chaining disabled (one step per superstep, like the
// shard runtime's BSP lockstep), dist's Messages must equal the shard
// exchange's emigrant total. Both skip the crossing on a walker's final
// step: dist retires the walker instead of messaging it, the shard
// runtime skips the exchange after a cohort's last step.
func TestDistMessagesMatchShardEmigrants(t *testing.T) {
	const n = 4096
	offs := make([]uint64, n+1)
	tgts := make([]graph.VID, n)
	for v := uint32(0); v < n; v++ {
		offs[v+1] = uint64(v + 1)
		tgts[v] = graph.VID((v + 1) % n)
	}
	g := &graph.CSR{Offsets: offs, Targets: tgts}

	eng, err := core.New(g, algo.DeepWalk(), core.Config{
		Workers: 2, Seed: 11, Planner: core.PlannerMCKP,
		Part: part.Config{TargetGroups: 2, MinVPSizeLog: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	topo, err := shard.New(eng, 3)
	if err != nil {
		t.Fatal(err)
	}

	const walkers, steps = 1500, 9
	if _, err := topo.RunMixed(context.Background(), []core.Cohort{
		{Spec: algo.DeepWalk(), Walkers: walkers, Steps: steps, Seed: 77},
	}); err != nil {
		t.Fatal(err)
	}
	vs, ok := topo.MetricsReport().Vector("shard_emigrants_total")
	if !ok {
		t.Fatal("shard topology reports no shard_emigrants_total vector")
	}
	emigrants := vs.Total()
	if emigrants == 0 {
		t.Fatal("no emigrants: the ring should cross every shard boundary")
	}

	reg := obs.NewRegistry()
	de, err := New(g, algo.DeepWalk(), Config{
		Bounds:               topo.Map().Ranges().Starts(),
		DisableLocalChaining: true,
		Seed:                 99, // trajectories are RNG-free on the ring
		Metrics:              reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if de.cfg.Partitions != topo.NumShards() {
		t.Fatalf("Bounds produced %d partitions, topology has %d shards", de.cfg.Partitions, topo.NumShards())
	}
	res, err := de.Run(walkers, steps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != emigrants {
		t.Fatalf("dist Messages = %d, shard emigrants = %d", res.Messages, emigrants)
	}

	// The obs counters are the same totals through the metrics layer.
	rep := reg.Snapshot()
	for _, want := range []struct {
		name string
		v    uint64
	}{
		{"dist_messages_total", res.Messages},
		{"dist_local_moves_total", res.LocalMoves},
		{"dist_supersteps_total", uint64(res.Supersteps)},
	} {
		c, ok := rep.Counter(want.name)
		if !ok {
			t.Fatalf("counter %s not reported", want.name)
		}
		if c.Value != want.v {
			t.Fatalf("%s = %d, want %d", want.name, c.Value, want.v)
		}
	}
}

// TestDistBoundsMatchEvenPartitioning pins that the RangeMap-backed
// partOf reproduces the historical ceil-div arithmetic exactly: the same
// run on the same seed yields identical results whether the cuts come
// from the default even split or from explicit Bounds spelling it out.
func TestDistBoundsMatchEvenPartitioning(t *testing.T) {
	g := testGraph(t, 700, 21)
	n := g.NumVertices()
	const parts = 5
	per := (n + parts - 1) / parts
	bounds := make([]graph.VID, parts+1)
	for i := 1; i <= parts; i++ {
		s := graph.VID(i) * graph.VID(per)
		if s > n {
			s = n
		}
		bounds[i] = s
	}
	run := func(cfg Config) *Result {
		e, err := New(g, algo.DeepWalk(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(400, 10)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	even := run(Config{Partitions: parts, Seed: 33, RecordPaths: true})
	explicit := run(Config{Bounds: bounds, Seed: 33, RecordPaths: true})
	if even.Messages != explicit.Messages || even.LocalMoves != explicit.LocalMoves ||
		even.Supersteps != explicit.Supersteps {
		t.Fatalf("even %+v vs explicit bounds %+v diverge", even, explicit)
	}
	for id := range even.Paths {
		for i := range even.Paths[id] {
			if even.Paths[id][i] != explicit.Paths[id][i] {
				t.Fatalf("walker %d step %d: %d vs %d", id, i, even.Paths[id][i], explicit.Paths[id][i])
			}
		}
	}
}

func TestDistMoreParticipantsMoreMessages(t *testing.T) {
	g := testGraph(t, 1200, 14)
	rate := func(parts int) float64 {
		e, err := New(g, algo.DeepWalk(), Config{Partitions: parts, Seed: 15})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(2000, 10)
		if err != nil {
			t.Fatal(err)
		}
		return res.MessageRate()
	}
	if r2, r16 := rate(2), rate(16); r16 <= r2 {
		t.Errorf("16 partitions message rate %.3f not above 2 partitions %.3f", r16, r2)
	}
}
