package dist

import (
	"math"
	"testing"

	"flashmob/internal/algo"
	"flashmob/internal/gen"
	"flashmob/internal/graph"
)

func testGraph(t *testing.T, n uint32, seed uint64) *graph.CSR {
	t.Helper()
	dir, err := gen.PowerLaw(gen.PowerLawConfig{
		NumVertices: n, AvgDegree: 6, Alpha: 0.7, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var edges []graph.Edge
	for v := uint32(0); v < dir.NumVertices(); v++ {
		for _, w := range dir.Neighbors(v) {
			if v != w {
				edges = append(edges, graph.Edge{Src: v, Dst: w})
			}
		}
	}
	res, err := graph.Build(edges, graph.BuildOptions{Undirected: true, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	return res.Graph
}

func TestDistValidWalks(t *testing.T) {
	g := testGraph(t, 1000, 1)
	for _, parts := range []int{1, 3, 8} {
		e, err := New(g, algo.DeepWalk(), Config{Partitions: parts, Seed: 2, RecordPaths: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(500, 12)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalSteps != 6000 {
			t.Fatalf("parts=%d: TotalSteps = %d", parts, res.TotalSteps)
		}
		for id, p := range res.Paths {
			if len(p) != 13 {
				t.Fatalf("parts=%d walker %d: path length %d, want 13", parts, id, len(p))
			}
			for i := 0; i+1 < len(p); i++ {
				if p[i] == p[i+1] && g.Degree(p[i]) == 0 {
					continue
				}
				if !g.HasEdge(p[i], p[i+1]) {
					t.Fatalf("parts=%d walker %d: %d→%d not an edge", parts, id, p[i], p[i+1])
				}
			}
		}
	}
}

func TestDistStationaryDistribution(t *testing.T) {
	g := testGraph(t, 250, 3)
	e, err := New(g, algo.DeepWalk(), Config{Partitions: 5, Seed: 4, RecordPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(40000, 15)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, g.NumVertices())
	for _, p := range res.Paths {
		counts[p[len(p)-1]]++
	}
	sumDeg := float64(g.NumEdges())
	for v := uint32(0); v < 10; v++ {
		want := float64(g.Degree(v)) / sumDeg
		got := counts[v] / float64(len(res.Paths))
		if want > 0.01 && math.Abs(got-want) > 0.25*want {
			t.Errorf("vertex %d: share %.4f, stationary %.4f", v, got, want)
		}
	}
}

func TestDistStepAccounting(t *testing.T) {
	g := testGraph(t, 800, 5)
	e, err := New(g, algo.DeepWalk(), Config{Partitions: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Every step is either local or message-borne (finishing cross-steps
	// carry no message, so allow up to one un-messaged step per walker).
	total := res.LocalMoves + res.Messages
	if total > res.TotalSteps {
		t.Errorf("accounted %d steps > total %d", total, res.TotalSteps)
	}
	if total < res.TotalSteps-res.Walkers {
		t.Errorf("accounted %d steps, want ≥ %d", total, res.TotalSteps-res.Walkers)
	}
	if res.Messages == 0 {
		t.Error("no migrations on a 4-partition graph?")
	}
}

func TestDistSinglePartitionNoMessages(t *testing.T) {
	g := testGraph(t, 300, 7)
	e, err := New(g, algo.DeepWalk(), Config{Partitions: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(200, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 0 {
		t.Errorf("single partition sent %d messages", res.Messages)
	}
	if res.Supersteps != 1 {
		t.Errorf("single partition took %d supersteps, want 1 (full chaining)", res.Supersteps)
	}
}

func TestDistLocalChainingReducesSupersteps(t *testing.T) {
	// KnightKing's optimization: with chaining, walkers burn many steps
	// per superstep; without it, supersteps == walk length.
	g := testGraph(t, 600, 9)
	run := func(disable bool) *Result {
		e, err := New(g, algo.DeepWalk(), Config{
			Partitions: 4, Seed: 10, DisableLocalChaining: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(500, 20)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	chained := run(false)
	naive := run(true)
	if naive.Supersteps != 20 {
		t.Errorf("unchained supersteps = %d, want 20", naive.Supersteps)
	}
	if chained.Supersteps >= naive.Supersteps {
		t.Errorf("chaining did not reduce supersteps: %d vs %d", chained.Supersteps, naive.Supersteps)
	}
	if chained.LocalMoves == 0 {
		t.Error("chaining recorded no local moves")
	}
}

func TestDistNode2Vec(t *testing.T) {
	g := testGraph(t, 400, 11)
	e, err := New(g, algo.Node2Vec(0.5, 2), Config{Partitions: 3, Seed: 12, RecordPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(300, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Paths {
		for i := 0; i+1 < len(p); i++ {
			if p[i] == p[i+1] && g.Degree(p[i]) == 0 {
				continue
			}
			if !g.HasEdge(p[i], p[i+1]) {
				t.Fatalf("node2vec %d→%d not an edge", p[i], p[i+1])
			}
		}
	}
}

func TestDistErrors(t *testing.T) {
	g := testGraph(t, 100, 13)
	if _, err := New(g, algo.Spec{Order: 7, Steps: 1}, Config{}); err == nil {
		t.Error("bad spec accepted")
	}
	spec := algo.DeepWalk()
	spec.Weighted = true
	if _, err := New(g, spec, Config{}); err == nil {
		t.Error("weighted accepted")
	}
	e, err := New(g, algo.DeepWalk(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(10, 1<<17); err == nil {
		t.Error("oversized step count accepted")
	}
}

func TestDistMoreParticipantsMoreMessages(t *testing.T) {
	g := testGraph(t, 1200, 14)
	rate := func(parts int) float64 {
		e, err := New(g, algo.DeepWalk(), Config{Partitions: parts, Seed: 15})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(2000, 10)
		if err != nil {
			t.Fatal(err)
		}
		return res.MessageRate()
	}
	if r2, r16 := rate(2), rate(16); r16 <= r2 {
		t.Errorf("16 partitions message rate %.3f not above 2 partitions %.3f", r16, r2)
	}
}
