// Package dist implements a KnightKing-style distributed random-walk
// engine (Yang et al., SOSP 2019) over in-process partitions: the graph is
// range-partitioned, each partition owns the walkers currently on its
// vertices, and walkers migrate between partitions as messages in BSP
// supersteps. KnightKing's locality optimization — "moves a walker as much
// as possible before it leaves the local graph partition" (§2.2 of the
// FlashMob paper) — is implemented and can be toggled off to quantify its
// message savings.
//
// The paper evaluates KnightKing's single-node build; this package
// supplies the engine's native distributed structure so the reproduction
// covers the comparison system as described in its own paper, and provides
// message/locality counters for analysis.
package dist

import (
	"fmt"
	"sync"
	"time"

	"flashmob/internal/algo"
	"flashmob/internal/graph"
	"flashmob/internal/obs"
	"flashmob/internal/part"
	"flashmob/internal/rng"
)

// Config tunes the distributed engine.
type Config struct {
	// Partitions is the number of graph partitions ("nodes"). Default 4.
	Partitions int
	// Bounds overrides the even range partitioning with explicit
	// boundaries: partition o owns [Bounds[o], Bounds[o+1]), Bounds[0]
	// must be 0 and the last entry |V|. Set it to a shard topology's
	// RangeMap starts to put this engine and internal/shard on identical
	// cuts (the message-parity test rests on this). When set, Partitions
	// is ignored in favor of len(Bounds)-1.
	Bounds []graph.VID
	// Seed drives sampling.
	Seed uint64
	// RecordPaths keeps each walker's full path.
	RecordPaths bool
	// DisableLocalChaining turns off KnightKing's walk-until-you-leave
	// optimization: every step then costs one message when the walker is
	// remote-bound, and supersteps advance one step at a time.
	DisableLocalChaining bool
	// Metrics, when non-nil, registers the engine's counters —
	// dist_messages_total, dist_local_moves_total, dist_supersteps_total
	// — on the given registry and adds each run's totals to them, so
	// distributed-baseline runs report through the same observability
	// layer as everything else instead of ad-hoc result fields alone.
	Metrics *obs.Registry
}

// distMetrics is the engine's obs counter set (Config.Metrics).
type distMetrics struct {
	messages   *obs.Counter
	localMoves *obs.Counter
	supersteps *obs.Counter
}

func newDistMetrics(reg *obs.Registry) *distMetrics {
	return &distMetrics{
		messages: reg.Counter(obs.Desc{
			Name: "dist_messages_total", Unit: "count", Stage: "dist",
			Help: "walker migrations between partitions",
		}),
		localMoves: reg.Counter(obs.Desc{
			Name: "dist_local_moves_total", Unit: "count", Stage: "dist",
			Help: "steps taken without leaving the partition",
		}),
		supersteps: reg.Counter(obs.Desc{
			Name: "dist_supersteps_total", Unit: "count", Stage: "dist",
			Help: "BSP rounds executed",
		}),
	}
}

// Result reports a distributed run.
type Result struct {
	Walkers    uint64
	Steps      int
	TotalSteps uint64
	Duration   time.Duration
	// Supersteps is the number of BSP rounds until all walkers finished.
	Supersteps int
	// Messages counts walker migrations between partitions.
	Messages uint64
	// LocalMoves counts steps taken without leaving the partition.
	LocalMoves uint64
	// Paths holds per-walker paths when recorded (walker-major).
	Paths [][]graph.VID
}

// MessageRate returns migrations per walker-step.
func (r *Result) MessageRate() float64 {
	if r.TotalSteps == 0 {
		return 0
	}
	return float64(r.Messages) / float64(r.TotalSteps)
}

// walkerMsg is one in-flight walker.
type walkerMsg struct {
	id        uint32
	cur, prev graph.VID
	remaining uint16
}

// node is one partition's state.
type node struct {
	index      int
	start, end graph.VID
	inbox      []walkerMsg
	// outboxes[d] collects walkers leaving for partition d this
	// superstep.
	outboxes [][]walkerMsg
	src      *rng.XorShift1024Star

	localMoves uint64
	finished   []walkerMsg
}

// Engine runs distributed walks on one graph.
type Engine struct {
	g     *graph.CSR
	spec  algo.Spec
	cfg   Config
	nodes []*node
	// rm maps a vertex to its owning partition (shared with
	// internal/part so dist and the shard runtime agree on cuts).
	rm *part.RangeMap
	m  *distMetrics
}

// New builds the engine, range-partitioning the vertex space evenly
// (or on cfg.Bounds when given).
func New(g *graph.CSR, spec algo.Spec, cfg Config) (*Engine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Weighted {
		return nil, fmt.Errorf("dist: weighted walks not supported")
	}
	if spec.History != nil {
		return nil, fmt.Errorf("dist: order-k history walks not supported (walker messages carry one predecessor)")
	}
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("dist: empty graph")
	}
	e := &Engine{g: g, spec: spec, cfg: cfg}
	if len(cfg.Bounds) > 0 {
		rm, err := part.NewRangeMap(cfg.Bounds)
		if err != nil {
			return nil, fmt.Errorf("dist: bad Bounds: %w", err)
		}
		if rm.Starts()[rm.NumOwners()] != n {
			return nil, fmt.Errorf("dist: Bounds end at %d, graph has %d vertices", rm.Starts()[rm.NumOwners()], n)
		}
		e.rm = rm
		e.cfg.Partitions = rm.NumOwners()
	} else {
		if cfg.Partitions <= 0 {
			cfg.Partitions = 4
		}
		if uint32(cfg.Partitions) > n {
			cfg.Partitions = int(n)
		}
		e.cfg.Partitions = cfg.Partitions
		rm, err := part.NewEvenRangeMap(n, cfg.Partitions)
		if err != nil {
			return nil, fmt.Errorf("dist: %w", err)
		}
		e.rm = rm
	}
	if cfg.Metrics != nil {
		e.m = newDistMetrics(cfg.Metrics)
	}
	for i := 0; i < e.cfg.Partitions; i++ {
		start, end := e.rm.Range(i)
		nd := &node{
			index: i,
			start: start,
			end:   end,
			src:   rng.NewXorShift1024Star(cfg.Seed + uint64(i)*0x9e3779b97f4a7c15 + 11),
		}
		nd.outboxes = make([][]walkerMsg, e.cfg.Partitions)
		e.nodes = append(e.nodes, nd)
	}
	return e, nil
}

// partOf returns the owning partition of v.
func (e *Engine) partOf(v graph.VID) int {
	return e.rm.OwnerOf(v)
}

// Run walks totalWalkers walkers (0 = |V|) for steps steps (0 = spec
// default).
func (e *Engine) Run(totalWalkers uint64, steps int) (*Result, error) {
	if totalWalkers == 0 {
		totalWalkers = uint64(e.g.NumVertices())
	}
	if steps == 0 {
		steps = e.spec.Steps
	}
	if steps <= 0 || steps > 1<<16-1 {
		return nil, fmt.Errorf("dist: steps %d out of range [1, 65535]", steps)
	}
	res := &Result{Walkers: totalWalkers, Steps: steps, TotalSteps: totalWalkers * uint64(steps)}

	var paths [][]graph.VID
	var pathMu sync.Mutex
	if e.cfg.RecordPaths {
		paths = make([][]graph.VID, totalWalkers)
	}

	// Seed walkers at vertex (id mod |V|), delivered to their owners.
	n := e.g.NumVertices()
	for _, nd := range e.nodes {
		nd.inbox = nd.inbox[:0]
		nd.finished = nd.finished[:0]
		nd.localMoves = 0
	}
	for id := uint64(0); id < totalWalkers; id++ {
		v := graph.VID(uint32(id) % n)
		nd := e.nodes[e.partOf(v)]
		nd.inbox = append(nd.inbox, walkerMsg{
			id: uint32(id), cur: v, prev: v, remaining: uint16(steps),
		})
		if e.cfg.RecordPaths {
			p := make([]graph.VID, 0, steps+1)
			paths[id] = append(p, v)
		}
	}

	start := time.Now()
	active := totalWalkers
	for active > 0 {
		res.Supersteps++
		var wg sync.WaitGroup
		for _, nd := range e.nodes {
			wg.Add(1)
			go func(nd *node) {
				defer wg.Done()
				e.processSuperstep(nd, paths, &pathMu)
			}(nd)
		}
		wg.Wait()

		// Exchange: deliver outboxes, counting messages; collect finished.
		for _, nd := range e.nodes {
			nd.inbox = nd.inbox[:0]
		}
		for _, nd := range e.nodes {
			active -= uint64(len(nd.finished))
			nd.finished = nd.finished[:0]
			for d, out := range nd.outboxes {
				if d != nd.index {
					// Self re-enqueues (chaining disabled) are not
					// network messages.
					res.Messages += uint64(len(out))
				}
				e.nodes[d].inbox = append(e.nodes[d].inbox, out...)
				nd.outboxes[d] = out[:0]
			}
		}
	}
	res.Duration = time.Since(start)
	for _, nd := range e.nodes {
		res.LocalMoves += nd.localMoves
	}
	res.Paths = paths
	if e.m != nil {
		e.m.messages.Add(res.Messages)
		e.m.localMoves.Add(res.LocalMoves)
		e.m.supersteps.Add(uint64(res.Supersteps))
	}
	return res, nil
}

// processSuperstep advances every walker in the node's inbox: with local
// chaining the walker keeps stepping while its current vertex stays in
// the partition; otherwise it takes exactly one step.
func (e *Engine) processSuperstep(nd *node, paths [][]graph.VID, pathMu *sync.Mutex) {
	var recorded []walkerMsg // steps taken this superstep, for path recording
	for _, w := range nd.inbox {
		for w.remaining > 0 {
			next := e.step(w.prev, w.cur, nd.src)
			w.prev, w.cur = w.cur, next
			w.remaining--
			nd.localMoves++
			if e.cfg.RecordPaths {
				recorded = append(recorded, w)
			}
			owner := e.partOf(w.cur)
			if owner != nd.index {
				nd.localMoves-- // crossing steps are message-borne, not local
				if w.remaining > 0 {
					nd.outboxes[owner] = append(nd.outboxes[owner], w)
				} else {
					nd.finished = append(nd.finished, w)
				}
				break
			}
			if e.cfg.DisableLocalChaining && w.remaining > 0 {
				// One step per superstep: re-enqueue locally (no message).
				nd.outboxes[nd.index] = append(nd.outboxes[nd.index], w)
				break
			}
		}
		if w.remaining == 0 && e.partOf(w.cur) == nd.index {
			nd.finished = append(nd.finished, w)
		}
	}
	if e.cfg.RecordPaths && len(recorded) > 0 {
		pathMu.Lock()
		for _, w := range recorded {
			paths[w.id] = append(paths[w.id], w.cur)
		}
		pathMu.Unlock()
	}
}

// step advances one walker one step under the spec.
func (e *Engine) step(prev, cur graph.VID, src rng.Source) graph.VID {
	if e.spec.StopProb > 0 && rng.Float64(src) < e.spec.StopProb {
		return graph.VID(rng.Uint32n(src, e.g.NumVertices()))
	}
	if e.spec.Order == 2 {
		if e.spec.Custom != nil {
			return algo.NextCustom(e.g, e.spec.Custom, prev, cur, src)
		}
		return algo.NextNode2Vec(e.g, prev, cur, e.spec.P, e.spec.Q, src)
	}
	return algo.NextFirstOrder(e.g, cur, src)
}
