package stats

import (
	"fmt"
	"math"

	"flashmob/internal/graph"
	"flashmob/internal/walk"
)

// TVDistance returns the total-variation distance between two
// distributions given as (not necessarily normalized) non-negative
// vectors of equal length: ½·Σ|a̅ᵢ - b̅ᵢ| after normalization.
func TVDistance(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: TV distance over mismatched lengths %d and %d", len(a), len(b))
	}
	var sa, sb float64
	for i := range a {
		if a[i] < 0 || b[i] < 0 {
			return 0, fmt.Errorf("stats: negative mass at index %d", i)
		}
		sa += a[i]
		sb += b[i]
	}
	if sa == 0 || sb == 0 {
		return 0, fmt.Errorf("stats: zero total mass")
	}
	var d float64
	for i := range a {
		d += math.Abs(a[i]/sa - b[i]/sb)
	}
	return d / 2, nil
}

// StationaryDegree returns the stationary distribution of the uniform
// random walk on an undirected graph: π(v) ∝ deg(v).
func StationaryDegree(g *graph.CSR) []float64 {
	out := make([]float64, g.NumVertices())
	total := float64(g.NumEdges())
	for v := uint32(0); v < g.NumVertices(); v++ {
		out[v] = float64(g.Degree(v)) / total
	}
	return out
}

// ConvergenceSeries returns, for every recorded step of a walk history,
// the total-variation distance between the walkers' empirical location
// distribution and the given reference distribution. On an undirected
// graph with StationaryDegree as reference, the series should decrease
// toward the sampling-noise floor — a mixing diagnostic for walk engines.
func ConvergenceSeries(h *walk.History, ref []float64) ([]float64, error) {
	if h.NumSteps() == 0 {
		return nil, fmt.Errorf("stats: empty history")
	}
	out := make([]float64, h.NumSteps())
	counts := make([]float64, len(ref))
	for step := 0; step < h.NumSteps(); step++ {
		for i := range counts {
			counts[i] = 0
		}
		for j := 0; j < h.NumWalkers(); j++ {
			v := h.At(step, j)
			if int(v) >= len(counts) {
				return nil, fmt.Errorf("stats: history vertex %d outside reference of %d", v, len(counts))
			}
			counts[v]++
		}
		d, err := TVDistance(counts, ref)
		if err != nil {
			return nil, err
		}
		out[step] = d
	}
	return out, nil
}
