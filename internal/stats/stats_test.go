package stats

import (
	"math"
	"testing"

	"flashmob/internal/gen"
	"flashmob/internal/graph"
)

func TestDegreeGroupsShares(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{
		NumVertices: 10000, AvgDegree: 8, Alpha: 0.8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := DegreeGroups(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 {
		t.Fatalf("got %d groups, want 4", len(groups))
	}
	var edgeSum float64
	for _, grp := range groups {
		edgeSum += grp.EdgeShare
	}
	if math.Abs(edgeSum-1) > 1e-9 {
		t.Errorf("edge shares sum to %v", edgeSum)
	}
	// Degree must be non-increasing across buckets, and the top bucket
	// must dominate (power-law property the paper's Table 2 shows).
	for i := 1; i < len(groups); i++ {
		if groups[i].AvgDegree > groups[i-1].AvgDegree {
			t.Errorf("bucket %d avg degree %.1f above bucket %d (%.1f)",
				i, groups[i].AvgDegree, i-1, groups[i-1].AvgDegree)
		}
	}
	if groups[0].EdgeShare < 0.2 {
		t.Errorf("top-1%% edge share %.3f, expected heavy head", groups[0].EdgeShare)
	}
}

func TestDegreeGroupsVisitsTrackEdges(t *testing.T) {
	// With visits proportional to degree (the stationary distribution of
	// a uniform walk on an undirected graph), visit shares must equal edge
	// shares — the central observation of Table 2.
	g, err := gen.PowerLaw(gen.PowerLawConfig{
		NumVertices: 5000, AvgDegree: 6, Alpha: 0.75, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	visits := make([]uint64, g.NumVertices())
	for v := uint32(0); v < g.NumVertices(); v++ {
		visits[v] = uint64(g.Degree(v)) * 10
	}
	groups, err := DegreeGroups(g, visits)
	if err != nil {
		t.Fatal(err)
	}
	for _, grp := range groups {
		if math.Abs(grp.VisitShare-grp.EdgeShare) > 1e-9 {
			t.Errorf("bucket %s: visit share %.4f != edge share %.4f",
				grp.Label, grp.VisitShare, grp.EdgeShare)
		}
	}
}

func TestDegreeGroupsUnsortedGraph(t *testing.T) {
	// Build an unsorted graph: vertex 2 has the highest degree.
	res, err := graph.Build([]graph.Edge{
		{Src: 2, Dst: 0}, {Src: 2, Dst: 1}, {Src: 2, Dst: 3}, {Src: 0, Dst: 2},
	}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := DegreeGroups(res.Graph, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Top bucket (1 vertex) must be vertex 2 with degree 3.
	if groups[0].AvgDegree != 3 {
		t.Errorf("top bucket avg degree %.1f, want 3", groups[0].AvgDegree)
	}
}

func TestDegreeGroupsErrors(t *testing.T) {
	g := &graph.CSR{Offsets: []uint64{0}}
	if _, err := DegreeGroups(g, nil); err == nil {
		t.Error("empty graph accepted")
	}
	res, _ := graph.Build([]graph.Edge{{Src: 0, Dst: 1}}, graph.BuildOptions{})
	if _, err := DegreeGroups(res.Graph, make([]uint64, 5)); err == nil {
		t.Error("mismatched visits accepted")
	}
}

func TestDegreeGroupsTinyGraph(t *testing.T) {
	res, _ := graph.Build([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}, graph.BuildOptions{})
	groups, err := DegreeGroups(res.Graph, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2 vertices: every bucket holds at least one vertex until exhausted.
	var covered uint32
	for _, grp := range groups {
		covered += grp.LastRank - grp.FirstRank
	}
	if covered != 2 {
		t.Errorf("buckets cover %d vertices, want 2", covered)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 1); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 0.5); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Percentile mutated input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 6})
	if s.Min != 2 || s.Max != 6 || s.Mean != 4 || s.Count != 3 {
		t.Errorf("summary = %+v", s)
	}
	if z := Summarize(nil); z.Count != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}
