package stats

import (
	"math"
	"testing"

	"flashmob/internal/graph"
	"flashmob/internal/walk"
)

func TestTVDistance(t *testing.T) {
	d, err := TVDistance([]float64{1, 0}, []float64{0, 1})
	if err != nil || d != 1 {
		t.Errorf("disjoint distributions: d=%v err=%v, want 1", d, err)
	}
	d, err = TVDistance([]float64{2, 2}, []float64{5, 5})
	if err != nil || d != 0 {
		t.Errorf("identical (unnormalized) distributions: d=%v err=%v, want 0", d, err)
	}
	d, err = TVDistance([]float64{3, 1}, []float64{1, 1})
	if err != nil || math.Abs(d-0.25) > 1e-12 {
		t.Errorf("d=%v, want 0.25", d)
	}
	if _, err := TVDistance([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := TVDistance([]float64{-1, 2}, []float64{1, 0}); err == nil {
		t.Error("negative mass accepted")
	}
	if _, err := TVDistance([]float64{0, 0}, []float64{1, 0}); err == nil {
		t.Error("zero mass accepted")
	}
}

func TestStationaryDegree(t *testing.T) {
	res, err := graph.Build([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 1, Dst: 2}, {Src: 2, Dst: 1}},
		graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pi := StationaryDegree(res.Graph)
	if math.Abs(pi[1]-0.5) > 1e-12 {
		t.Errorf("π(1) = %v, want 0.5", pi[1])
	}
	var sum float64
	for _, p := range pi {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("π sums to %v", sum)
	}
}

func TestConvergenceSeriesDecreases(t *testing.T) {
	// Synthetic history: start concentrated on vertex 0, end uniform over
	// a 2-vertex "graph" with equal degrees.
	h := walk.NewHistory(4)
	if err := h.Append([]graph.VID{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := h.Append([]graph.VID{0, 0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := h.Append([]graph.VID{0, 1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	series, err := ConvergenceSeries(h, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !(series[0] > series[1] && series[1] > series[2]) {
		t.Errorf("series not decreasing: %v", series)
	}
	if series[2] != 0 {
		t.Errorf("final distance %v, want 0", series[2])
	}
}

func TestConvergenceSeriesErrors(t *testing.T) {
	h := walk.NewHistory(1)
	if _, err := ConvergenceSeries(h, []float64{1}); err == nil {
		t.Error("empty history accepted")
	}
	if err := h.Append([]graph.VID{5}); err != nil {
		t.Fatal(err)
	}
	if _, err := ConvergenceSeries(h, []float64{1, 1}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}
