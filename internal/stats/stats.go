// Package stats computes the workload-characterization statistics of the
// paper's Table 2: for vertices bucketed by degree percentile, the bucket's
// average degree, share of edges, and share of walker visits.
package stats

import (
	"fmt"
	"sort"

	"flashmob/internal/graph"
)

// GroupStats describes one degree-percentile bucket.
type GroupStats struct {
	// Label is the paper's column header, e.g. "<1%".
	Label string
	// FirstRank and LastRank delimit the bucket in degree-rank order
	// (rank 0 = highest degree), inclusive-exclusive.
	FirstRank, LastRank uint32
	// AvgDegree is the bucket's mean degree (the paper's D̄ row).
	AvgDegree float64
	// EdgeShare is the bucket's fraction of all edges (the |E| row).
	EdgeShare float64
	// VisitShare is the bucket's fraction of all walker visits (the |W|
	// row); zero when no visit counts were supplied.
	VisitShare float64
}

// PaperBuckets are Table 2's percentile boundaries: top 1%, 1–5%, 5–25%,
// 25–100%.
var PaperBuckets = []struct {
	Label string
	Hi    float64 // cumulative upper bound as a fraction of |V|
}{
	{"<1%", 0.01},
	{"1%~5%", 0.05},
	{"5%~25%", 0.25},
	{"25%~100%", 1.00},
}

// DegreeGroups buckets vertices by degree percentile and reports each
// bucket's average degree, edge share, and (if visits is non-nil) visit
// share. visits[v] counts walker-steps that landed on vertex v.
func DegreeGroups(g *graph.CSR, visits []uint64) ([]GroupStats, error) {
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("stats: empty graph")
	}
	if visits != nil && uint32(len(visits)) != n {
		return nil, fmt.Errorf("stats: visits has %d entries, graph has %d vertices", len(visits), n)
	}
	// Rank vertices by descending degree (stable, so already-sorted
	// graphs rank as the identity).
	ranks := make([]uint32, n)
	for i := range ranks {
		ranks[i] = uint32(i)
	}
	if !graph.IsDegreeSorted(g) {
		sort.SliceStable(ranks, func(i, j int) bool {
			return g.Degree(ranks[i]) > g.Degree(ranks[j])
		})
	}

	totalEdges := float64(g.NumEdges())
	var totalVisits float64
	if visits != nil {
		for _, c := range visits {
			totalVisits += float64(c)
		}
	}

	out := make([]GroupStats, 0, len(PaperBuckets))
	var lo uint32
	for _, b := range PaperBuckets {
		hi := uint32(b.Hi * float64(n))
		if hi <= lo {
			hi = lo + 1
		}
		if hi > n {
			hi = n
		}
		gs := GroupStats{Label: b.Label, FirstRank: lo, LastRank: hi}
		var edges, vis uint64
		for r := lo; r < hi; r++ {
			v := ranks[r]
			edges += uint64(g.Degree(v))
			if visits != nil {
				vis += visits[v]
			}
		}
		gs.AvgDegree = float64(edges) / float64(hi-lo)
		if totalEdges > 0 {
			gs.EdgeShare = float64(edges) / totalEdges
		}
		if totalVisits > 0 {
			gs.VisitShare = float64(vis) / totalVisits
		}
		out = append(out, gs)
		lo = hi
		if lo >= n {
			break
		}
	}
	return out, nil
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of xs by nearest-rank on a
// sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 1 {
		return cp[len(cp)-1]
	}
	idx := int(p * float64(len(cp)-1))
	return cp[idx]
}

// Summary holds basic distribution statistics.
type Summary struct {
	Min, Max, Mean float64
	Count          int
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	var s Summary
	s.Count = len(xs)
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	return s
}
