// Package algo defines the random-walk algorithms evaluated in the paper —
// DeepWalk (first-order uniform) and node2vec (second-order biased) — plus
// the classical weighted and stochastic-termination walks the substrate
// supports. The per-step samplers here are shared by every engine
// (FlashMob, the KnightKing-style baseline, the GraphVite-style baseline,
// and the trace-driven simulators), so all engines walk the exact same
// process and differ only in memory behaviour.
package algo

import (
	"fmt"

	"flashmob/internal/graph"
	"flashmob/internal/rng"
)

// Spec describes a random-walk algorithm instance.
type Spec struct {
	// Name labels the algorithm in reports.
	Name string
	// Order is 1 for first-order walks, 2 for second-order.
	Order int
	// Steps is the default walk length (DeepWalk: 80, node2vec: 40 in the
	// paper's evaluation tradition).
	Steps int
	// P and Q are node2vec's return and in-out hyper-parameters (used when
	// Order == 2).
	P, Q float64
	// Weighted selects weight-proportional edge sampling (requires the
	// graph to carry weights).
	Weighted bool
	// StopProb is a per-step stochastic termination probability (0 means
	// walks run exactly Steps steps). PageRank-style walks set 1-damping.
	StopProb float64
	// Custom, when non-nil, replaces the node2vec transition weights with
	// an application-defined second-order transition (see Transition).
	Custom *Transition
	// History, when non-nil, defines an order-k transition over a bounded
	// history window (see KTransition). Order must equal
	// History.Window+1.
	History *KTransition
}

// Validate checks the spec's internal consistency.
func (s Spec) Validate() error {
	if s.History != nil {
		if s.Custom != nil {
			return fmt.Errorf("algo: Custom and History transitions are mutually exclusive")
		}
		if s.History.Window < 1 {
			return fmt.Errorf("algo: history window must be ≥ 1")
		}
		if s.Order != s.History.Window+1 {
			return fmt.Errorf("algo: order %d does not match history window %d (+1)", s.Order, s.History.Window)
		}
		if s.History.Weight == nil || s.History.MaxWeight <= 0 {
			return fmt.Errorf("algo: history transition needs a weight function and positive MaxWeight")
		}
	} else if s.Order != 1 && s.Order != 2 {
		return fmt.Errorf("algo: order %d unsupported without a history transition", s.Order)
	}
	if s.Steps <= 0 {
		return fmt.Errorf("algo: steps must be positive, got %d", s.Steps)
	}
	if s.Order == 2 && s.Custom == nil && (s.P <= 0 || s.Q <= 0) {
		return fmt.Errorf("algo: node2vec requires positive p (%v) and q (%v)", s.P, s.Q)
	}
	if s.Custom != nil {
		if s.Order != 2 {
			return fmt.Errorf("algo: custom transitions require a second-order spec")
		}
		if s.Custom.Weight == nil {
			return fmt.Errorf("algo: custom transition has no weight function")
		}
		if s.Custom.MaxWeight <= 0 {
			return fmt.Errorf("algo: custom transition needs a positive MaxWeight bound")
		}
	}
	if s.StopProb < 0 || s.StopProb >= 1 {
		return fmt.Errorf("algo: stop probability %v out of [0,1)", s.StopProb)
	}
	return nil
}

// DeepWalk returns the paper's primary workload: a first-order uniform
// walk of 80 steps (Perozzi et al. 2014 defaults).
func DeepWalk() Spec {
	return Spec{Name: "DeepWalk", Order: 1, Steps: 80}
}

// Node2Vec returns the second-order biased walk (Grover & Leskovec 2016),
// 40 steps by default.
func Node2Vec(p, q float64) Spec {
	return Spec{Name: "node2vec", Order: 2, Steps: 40, P: p, Q: q}
}

// PageRankWalk returns a first-order walk with stochastic termination at
// probability 1-damping per step, the Monte-Carlo PageRank estimator.
func PageRankWalk(damping float64) Spec {
	return Spec{Name: "PageRank", Order: 1, Steps: 256, StopProb: 1 - damping}
}

// NextFirstOrder samples a uniform out-edge of u and returns its target.
// Dead ends (zero out-degree) keep the walker in place, so walker arrays
// never hold invalid VIDs.
func NextFirstOrder(g *graph.CSR, u graph.VID, src rng.Source) graph.VID {
	d := g.Degree(u)
	if d == 0 {
		return u
	}
	return g.Neighbors(u)[rng.Uint32n(src, d)]
}

// Node2VecWeight returns the unnormalized node2vec transition weight of
// moving from u to candidate x, given predecessor s: 1/p to return to s, 1
// to a common neighbour of s, 1/q otherwise.
func Node2VecWeight(g *graph.CSR, s, x graph.VID, p, q float64) float64 {
	switch {
	case x == s:
		return 1 / p
	case g.HasEdge(s, x):
		return 1
	default:
		return 1 / q
	}
}

// NextNode2Vec samples the next vertex of a node2vec walk at u with
// predecessor s, using rejection sampling (the KnightKing/FlashMob
// technique): draw a uniform neighbour candidate, accept with probability
// weight/maxWeight. Expected tries are bounded by maxWeight/minWeight.
func NextNode2Vec(g *graph.CSR, s, u graph.VID, p, q float64, src rng.Source) graph.VID {
	d := g.Degree(u)
	if d == 0 {
		return u
	}
	adj := g.Neighbors(u)
	maxW := 1.0
	if 1/p > maxW {
		maxW = 1 / p
	}
	if 1/q > maxW {
		maxW = 1 / q
	}
	for {
		x := adj[rng.Uint32n(src, d)]
		w := Node2VecWeight(g, s, x, p, q)
		if w >= maxW || rng.Float64(src)*maxW < w {
			return x
		}
	}
}

// NextNode2VecExact computes the full transition distribution and samples
// it by inverse transform — O(degree) per step. It exists as the reference
// implementation the rejection sampler is tested against.
func NextNode2VecExact(g *graph.CSR, s, u graph.VID, p, q float64, src rng.Source) graph.VID {
	d := g.Degree(u)
	if d == 0 {
		return u
	}
	adj := g.Neighbors(u)
	weights := make([]float64, d)
	for i, x := range adj {
		weights[i] = Node2VecWeight(g, s, x, p, q)
	}
	return adj[rng.NewCDF(weights).Sample(src)]
}

// WeightedSampler performs weight-proportional first-order sampling with
// per-vertex alias tables (Walker 1977), the classical pre-processing
// technique referenced in the paper's related work. Build cost is
// O(|E|); each sample is O(1).
type WeightedSampler struct {
	tables []*rng.AliasTable
	g      *graph.CSR
}

// NewWeightedSampler builds alias tables for every vertex of a weighted
// graph.
func NewWeightedSampler(g *graph.CSR) (*WeightedSampler, error) {
	if g.Weights == nil {
		return nil, fmt.Errorf("algo: weighted sampler needs a weighted graph")
	}
	ws := &WeightedSampler{tables: make([]*rng.AliasTable, g.NumVertices()), g: g}
	for v := uint32(0); v < g.NumVertices(); v++ {
		ew := g.EdgeWeights(v)
		if len(ew) == 0 {
			continue
		}
		w64 := make([]float64, len(ew))
		allZero := true
		for i, x := range ew {
			w64[i] = float64(x)
			if x > 0 {
				allZero = false
			}
		}
		if allZero {
			// Degenerate weights: fall back to uniform.
			for i := range w64 {
				w64[i] = 1
			}
		}
		ws.tables[v] = rng.NewAliasTable(w64)
	}
	return ws, nil
}

// Next samples the next vertex from u proportionally to edge weight.
func (ws *WeightedSampler) Next(u graph.VID, src rng.Source) graph.VID {
	t := ws.tables[u]
	if t == nil {
		return u
	}
	return ws.g.Neighbors(u)[t.Sample(src)]
}

// NextFrom is Next with a concrete generator: the same draw sequence, but
// the alias draw devirtualizes so the weighted sample kernels stay
// RNG-bound rather than dispatch-bound.
func (ws *WeightedSampler) NextFrom(u graph.VID, x *rng.XorShift1024Star) graph.VID {
	t := ws.tables[u]
	if t == nil {
		return u
	}
	return ws.g.Neighbors(u)[t.SampleFrom(x)]
}
