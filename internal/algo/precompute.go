package algo

import (
	"fmt"

	"flashmob/internal/graph"
	"flashmob/internal/rng"
)

// Node2VecPrecomputed materializes one alias table per directed edge
// (s → u), covering the full second-order transition distribution out of u
// given predecessor s. This is the classical pre-processing approach the
// paper's related work attributes to Spark-Node2Vec-style systems: O(1)
// sampling per step, but O(Σ_u d(u)·d̄(in)) memory and build time, which
// is why rejection sampling (NextNode2Vec) replaced it at scale — the
// tests and benchmarks here quantify that trade-off.
type Node2VecPrecomputed struct {
	g *graph.CSR
	// tables[edgeIdx] is the alias table for walks arriving via
	// Targets[edgeIdx] — i.e. predecessor = source of edge, current =
	// target. Indexed by the incoming edge's position in CSR order.
	tables []*rng.AliasTable
	p, q   float64
}

// NewNode2VecPrecomputed builds all per-edge tables. maxEntries bounds the
// total alias-table entries (Σ over edges of d(target)); building stops
// with an error beyond it, making the memory blow-up explicit rather than
// silent.
func NewNode2VecPrecomputed(g *graph.CSR, p, q float64, maxEntries uint64) (*Node2VecPrecomputed, error) {
	if p <= 0 || q <= 0 {
		return nil, fmt.Errorf("algo: node2vec requires positive p and q")
	}
	// Pre-flight the entry count so we fail before allocating.
	var entries uint64
	for s := uint32(0); s < g.NumVertices(); s++ {
		for _, u := range g.Neighbors(s) {
			entries += uint64(g.Degree(u))
		}
	}
	if entries > maxEntries {
		return nil, fmt.Errorf("algo: precomputed node2vec needs %d alias entries (≈%dMB), budget is %d",
			entries, entries*12/(1<<20), maxEntries)
	}
	pc := &Node2VecPrecomputed{
		g:      g,
		tables: make([]*rng.AliasTable, g.NumEdges()),
		p:      p,
		q:      q,
	}
	weights := make([]float64, 0, 64)
	for s := uint32(0); s < g.NumVertices(); s++ {
		adjS := g.Neighbors(s)
		base := g.Offsets[s]
		for i, u := range adjS {
			adjU := g.Neighbors(u)
			if len(adjU) == 0 {
				continue
			}
			weights = weights[:0]
			for _, x := range adjU {
				weights = append(weights, Node2VecWeight(g, s, x, p, q))
			}
			pc.tables[base+uint64(i)] = rng.NewAliasTable(weights)
		}
	}
	return pc, nil
}

// EntryCount returns the total alias-table entries held (the memory-cost
// driver).
func (pc *Node2VecPrecomputed) EntryCount() uint64 {
	var n uint64
	for _, t := range pc.tables {
		if t != nil {
			n += uint64(t.Len())
		}
	}
	return n
}

// Next samples the next vertex for a walker at u that arrived via the
// edge with CSR index incomingEdge (so its predecessor is that edge's
// source). O(1) per step.
func (pc *Node2VecPrecomputed) Next(u graph.VID, incomingEdge uint64, src rng.Source) (graph.VID, uint64) {
	t := pc.tables[incomingEdge]
	if t == nil {
		return u, incomingEdge // dead end: stay
	}
	k := t.Sample(src)
	return pc.g.Neighbors(u)[k], pc.g.Offsets[u] + uint64(k)
}

// FirstEdge picks a uniform first step out of start, returning the next
// vertex and the edge index taken (the state Next needs).
func (pc *Node2VecPrecomputed) FirstEdge(start graph.VID, src rng.Source) (graph.VID, uint64, bool) {
	d := pc.g.Degree(start)
	if d == 0 {
		return start, 0, false
	}
	k := rng.Uint32n(src, d)
	idx := pc.g.Offsets[start] + uint64(k)
	return pc.g.Targets[idx], idx, true
}
