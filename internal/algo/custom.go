package algo

import (
	"flashmob/internal/graph"
	"flashmob/internal/rng"
)

// Transition defines an application-specific second-order walk: an
// arbitrary unnormalized weight over candidate next vertices, sampled by
// rejection exactly as KnightKing's application-agnostic engine does.
// Every engine in this repository (FlashMob, the baselines, the
// distributed engine) accepts a Spec carrying one, so custom applications
// — SimRank-style pair walks, backtrack-averse explorations, metapath
// walks on typed graphs — run on the same cache-efficient machinery.
type Transition struct {
	// Weight returns the unnormalized probability weight of stepping from
	// cur (reached from prev) to candidate cand, which is always an
	// out-neighbour of cur. It must be non-negative and must not exceed
	// MaxWeight. A weight of 0 rejects the candidate outright.
	Weight func(g *graph.CSR, prev, cur, cand graph.VID) float64
	// MaxWeight is the rejection-sampling bound: expected tries per step
	// are MaxWeight divided by the mean candidate weight.
	MaxWeight float64
}

// Custom returns a second-order spec driven by the given transition.
func Custom(name string, steps int, tr *Transition) Spec {
	return Spec{Name: name, Order: 2, Steps: steps, P: 1, Q: 1, Custom: tr}
}

// NoBacktrack returns a walk that suppresses immediate backtracking: the
// predecessor is re-selected with relative weight eps (0 forbids it
// entirely unless it is the only neighbour — the walk then stalls one
// round and retries, so use a small positive eps on graphs with leaves).
func NoBacktrack(steps int, eps float64) Spec {
	return Custom("no-backtrack", steps, &Transition{
		MaxWeight: 1,
		Weight: func(g *graph.CSR, prev, cur, cand graph.VID) float64 {
			if cand == prev {
				return eps
			}
			return 1
		},
	})
}

// NextCustom advances a custom second-order walk one step by rejection
// sampling over uniform neighbour candidates.
func NextCustom(g *graph.CSR, tr *Transition, prev, cur graph.VID, src rng.Source) graph.VID {
	d := g.Degree(cur)
	if d == 0 {
		return cur
	}
	adj := g.Neighbors(cur)
	if d == 1 {
		// Single neighbour: rejection would loop forever on weight 0.
		return adj[0]
	}
	for {
		x := adj[rng.Uint32n(src, d)]
		w := tr.Weight(g, prev, cur, x)
		if w >= tr.MaxWeight || rng.Float64(src)*tr.MaxWeight < w {
			return x
		}
	}
}

// KTransition defines an order-k walk (the paper's general
// p(v | u, t, s, ...) form, §2.1): the transition weight may inspect a
// bounded window of the walker's history. history[0] is the immediate
// predecessor, history[1] the vertex before it, and so on.
type KTransition struct {
	// Window is the number of predecessors carried (k-1 for an order-k
	// walk).
	Window int
	// MaxWeight bounds Weight for rejection sampling.
	MaxWeight float64
	// Weight returns the unnormalized weight of stepping from cur to
	// cand, which is always an out-neighbour of cur.
	Weight func(g *graph.CSR, history []graph.VID, cur, cand graph.VID) float64
}

// HigherOrder returns an order-(window+1) spec driven by tr.
func HigherOrder(name string, steps int, tr *KTransition) Spec {
	return Spec{Name: name, Order: tr.Window + 1, Steps: steps, P: 1, Q: 1, History: tr}
}

// SelfAvoiding returns a walk that suppresses revisiting any vertex seen
// in the last `window` steps (relative weight eps for recently visited
// candidates) — a simple, testable order-k application.
func SelfAvoiding(window, steps int, eps float64) Spec {
	return HigherOrder("self-avoiding", steps, &KTransition{
		Window:    window,
		MaxWeight: 1,
		Weight: func(g *graph.CSR, history []graph.VID, cur, cand graph.VID) float64 {
			for _, h := range history {
				if cand == h {
					return eps
				}
			}
			return 1
		},
	})
}

// NextHigherOrder advances an order-k walk one step by rejection sampling
// over uniform neighbour candidates.
func NextHigherOrder(g *graph.CSR, tr *KTransition, history []graph.VID, cur graph.VID, src rng.Source) graph.VID {
	d := g.Degree(cur)
	if d == 0 {
		return cur
	}
	adj := g.Neighbors(cur)
	if d == 1 {
		return adj[0] // single continuation: weight 0 must not spin
	}
	for {
		x := adj[rng.Uint32n(src, d)]
		w := tr.Weight(g, history, cur, x)
		if w >= tr.MaxWeight || rng.Float64(src)*tr.MaxWeight < w {
			return x
		}
	}
}
