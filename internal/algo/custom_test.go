package algo

import (
	"math"
	"testing"

	"flashmob/internal/graph"
	"flashmob/internal/rng"
)

func TestCustomSpecValidation(t *testing.T) {
	ok := Custom("x", 10, &Transition{MaxWeight: 1, Weight: func(g *graph.CSR, p, c, x graph.VID) float64 { return 1 }})
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{Order: 1, Steps: 1, Custom: &Transition{MaxWeight: 1, Weight: func(g *graph.CSR, p, c, x graph.VID) float64 { return 1 }}},
		{Order: 2, Steps: 1, P: 1, Q: 1, Custom: &Transition{MaxWeight: 1}},
		{Order: 2, Steps: 1, P: 1, Q: 1, Custom: &Transition{Weight: func(g *graph.CSR, p, c, x graph.VID) float64 { return 1 }}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad custom spec %d accepted", i)
		}
	}
}

func TestNextCustomMatchesNode2Vec(t *testing.T) {
	// A custom transition encoding node2vec's weights must reproduce the
	// built-in sampler's distribution.
	g := lineGraph(t)
	p, q := 2.0, 0.5
	tr := &Transition{
		MaxWeight: 2, // max(1/p, 1, 1/q) = 1/q = 2
		Weight: func(g *graph.CSR, prev, cur, cand graph.VID) float64 {
			return Node2VecWeight(g, prev, cand, p, q)
		},
	}
	srcA := rng.NewXorShift64Star(1)
	srcB := rng.NewXorShift64Star(2)
	const draws = 60000
	custom := map[graph.VID]float64{}
	builtin := map[graph.VID]float64{}
	for i := 0; i < draws; i++ {
		custom[NextCustom(g, tr, 0, 1, srcA)]++
		builtin[NextNode2Vec(g, 0, 1, p, q, srcB)]++
	}
	for _, x := range g.Neighbors(1) {
		a, b := custom[x]/draws, builtin[x]/draws
		if math.Abs(a-b) > 0.015 {
			t.Errorf("candidate %d: custom %.3f vs builtin %.3f", x, a, b)
		}
	}
}

func TestNoBacktrackSuppressesReturns(t *testing.T) {
	g := lineGraph(t)
	spec := NoBacktrack(10, 0.01)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	src := rng.NewXorShift64Star(3)
	var returns, total int
	for i := 0; i < 40000; i++ {
		// Walker at 1 arrived from 0.
		if NextCustom(g, spec.Custom, 0, 1, src) == 0 {
			returns++
		}
		total++
	}
	// Uniform would return ~1/3 of the time; eps=0.01 should nearly
	// eliminate it.
	if rate := float64(returns) / float64(total); rate > 0.02 {
		t.Errorf("return rate %.4f, want < 0.02", rate)
	}
}

func TestNextCustomSingleNeighbour(t *testing.T) {
	// Weight 0 everywhere must not hang when only one continuation
	// exists.
	res, err := graph.Build([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr := &Transition{MaxWeight: 1, Weight: func(g *graph.CSR, p, c, x graph.VID) float64 { return 0 }}
	src := rng.NewXorShift64Star(4)
	if got := NextCustom(res.Graph, tr, 0, 1, src); got != 0 {
		t.Errorf("single-neighbour custom step went to %d", got)
	}
}

func TestHigherOrderValidation(t *testing.T) {
	ok := SelfAvoiding(3, 10, 0.01)
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if ok.Order != 4 {
		t.Errorf("window 3 should be order 4, got %d", ok.Order)
	}
	bad := []Spec{
		{Order: 3, Steps: 1}, // order 3 without history
		{Order: 2, Steps: 1, History: &KTransition{Window: 3, MaxWeight: 1,
			Weight: func(g *graph.CSR, h []graph.VID, c, x graph.VID) float64 { return 1 }}}, // mismatch
		{Order: 2, Steps: 1, History: &KTransition{Window: 1, MaxWeight: 0,
			Weight: func(g *graph.CSR, h []graph.VID, c, x graph.VID) float64 { return 1 }}}, // bad bound
		{Order: 1, Steps: 1, History: &KTransition{Window: 0, MaxWeight: 1,
			Weight: func(g *graph.CSR, h []graph.VID, c, x graph.VID) float64 { return 1 }}}, // window 0
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad higher-order spec %d accepted", i)
		}
	}
	both := SelfAvoiding(2, 5, 0.1)
	both.Custom = &Transition{MaxWeight: 1, Weight: func(g *graph.CSR, p, c, x graph.VID) float64 { return 1 }}
	if err := both.Validate(); err == nil {
		t.Error("Custom+History accepted")
	}
}

func TestNextHigherOrderAvoidsWindow(t *testing.T) {
	g := lineGraph(t)
	spec := SelfAvoiding(2, 10, 0.001)
	src := rng.NewXorShift64Star(5)
	// Walker at 1 with history [0, 2]: both 0 and 2 are recent, so of
	// neighbours {0, 2, 3} nearly all samples must pick 3.
	hist := []graph.VID{0, 2}
	var picked3, total int
	for i := 0; i < 20000; i++ {
		if NextHigherOrder(g, spec.History, hist, 1, src) == 3 {
			picked3++
		}
		total++
	}
	if rate := float64(picked3) / float64(total); rate < 0.99 {
		t.Errorf("fresh-vertex rate %.4f, want > 0.99", rate)
	}
}
