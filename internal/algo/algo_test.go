package algo

import (
	"math"
	"testing"

	"flashmob/internal/graph"
	"flashmob/internal/rng"
)

func lineGraph(t testing.TB) *graph.CSR {
	t.Helper()
	// 0 ↔ 1 ↔ 2 ↔ 3, plus chord 1 ↔ 3.
	res, err := graph.Build([]graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 1, Dst: 3},
	}, graph.BuildOptions{Undirected: true})
	if err != nil {
		t.Fatal(err)
	}
	return res.Graph
}

func TestSpecValidate(t *testing.T) {
	for _, s := range []Spec{DeepWalk(), Node2Vec(1, 1), Node2Vec(0.25, 4), PageRankWalk(0.85)} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	bad := []Spec{
		{Order: 3, Steps: 1},
		{Order: 1, Steps: 0},
		{Order: 2, Steps: 10, P: 0, Q: 1},
		{Order: 2, Steps: 10, P: 1, Q: -1},
		{Order: 1, Steps: 10, StopProb: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestDefaults(t *testing.T) {
	if s := DeepWalk(); s.Steps != 80 || s.Order != 1 {
		t.Errorf("DeepWalk defaults wrong: %+v", s)
	}
	if s := Node2Vec(2, 0.5); s.Steps != 40 || s.Order != 2 || s.P != 2 || s.Q != 0.5 {
		t.Errorf("Node2Vec defaults wrong: %+v", s)
	}
	if s := PageRankWalk(0.85); math.Abs(s.StopProb-0.15) > 1e-12 {
		t.Errorf("PageRank stop prob: %v", s.StopProb)
	}
}

func TestNextFirstOrderUniform(t *testing.T) {
	g := lineGraph(t)
	src := rng.NewXorShift64Star(1)
	counts := map[graph.VID]int{}
	const draws = 60000
	for i := 0; i < draws; i++ {
		counts[NextFirstOrder(g, 1, src)]++
	}
	// Vertex 1 has neighbours 0, 2, 3 — each ~1/3.
	for _, v := range []graph.VID{0, 2, 3} {
		share := float64(counts[v]) / draws
		if math.Abs(share-1.0/3) > 0.02 {
			t.Errorf("neighbour %d share %.3f, want ≈1/3", v, share)
		}
	}
}

func TestNextFirstOrderDeadEnd(t *testing.T) {
	// Vertex 1 has no out-edges.
	res, err := graph.Build([]graph.Edge{{Src: 0, Dst: 1}}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewXorShift64Star(2)
	if got := NextFirstOrder(res.Graph, 1, src); got != 1 {
		t.Errorf("dead-end walker moved to %d, want stay at 1", got)
	}
}

func TestNode2VecWeight(t *testing.T) {
	g := lineGraph(t)
	p, q := 2.0, 0.5
	// From u=2 with predecessor s=1: returning to 1 costs 1/p; vertex 3 is
	// a neighbour of 1 → weight 1.
	if w := Node2VecWeight(g, 1, 1, p, q); w != 0.5 {
		t.Errorf("return weight %v, want 0.5", w)
	}
	if w := Node2VecWeight(g, 1, 3, p, q); w != 1 {
		t.Errorf("common-neighbour weight %v, want 1", w)
	}
	// From u=1 with s=0: vertex 2 is not adjacent to 0 → 1/q.
	if w := Node2VecWeight(g, 0, 2, p, q); w != 2 {
		t.Errorf("far weight %v, want 2", w)
	}
}

func TestNode2VecRejectionMatchesExact(t *testing.T) {
	g := lineGraph(t)
	for _, pq := range [][2]float64{{1, 1}, {0.25, 4}, {4, 0.25}, {2, 0.5}} {
		p, q := pq[0], pq[1]
		s, u := graph.VID(0), graph.VID(1)
		const draws = 80000
		rej := map[graph.VID]float64{}
		exact := map[graph.VID]float64{}
		srcA := rng.NewXorShift64Star(7)
		srcB := rng.NewXorShift64Star(8)
		for i := 0; i < draws; i++ {
			rej[NextNode2Vec(g, s, u, p, q, srcA)]++
			exact[NextNode2VecExact(g, s, u, p, q, srcB)]++
		}
		for _, x := range g.Neighbors(u) {
			a, b := rej[x]/draws, exact[x]/draws
			if math.Abs(a-b) > 0.015 {
				t.Errorf("p=%v q=%v: candidate %d rejection %.3f vs exact %.3f", p, q, x, a, b)
			}
		}
	}
}

func TestNode2VecBFSDFSBias(t *testing.T) {
	g := lineGraph(t)
	s, u := graph.VID(0), graph.VID(1)
	src := rng.NewXorShift64Star(3)
	const draws = 50000
	// Low q (DFS-like): prefer far vertex 2 (not adjacent to 0) over
	// returning.
	var far, ret int
	for i := 0; i < draws; i++ {
		switch NextNode2Vec(g, s, u, 4, 0.25, src) {
		case 2:
			far++
		case 0:
			ret++
		}
	}
	if far <= ret*2 {
		t.Errorf("DFS bias missing: far=%d return=%d", far, ret)
	}
	// High q, low p (BFS-like): returning dominates far hops.
	far, ret = 0, 0
	for i := 0; i < draws; i++ {
		switch NextNode2Vec(g, s, u, 0.25, 4, src) {
		case 2:
			far++
		case 0:
			ret++
		}
	}
	if ret <= far*2 {
		t.Errorf("BFS bias missing: far=%d return=%d", far, ret)
	}
}

func TestNode2VecDeadEnd(t *testing.T) {
	res, err := graph.Build([]graph.Edge{{Src: 0, Dst: 1}}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewXorShift64Star(4)
	if got := NextNode2Vec(res.Graph, 0, 1, 1, 1, src); got != 1 {
		t.Errorf("dead-end node2vec moved to %d", got)
	}
}

func TestWeightedSampler(t *testing.T) {
	res, err := graph.Build([]graph.Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 0, Dst: 2, Weight: 3},
	}, graph.BuildOptions{Weighted: true, NumVertices: 3})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := NewWeightedSampler(res.Graph)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewXorShift64Star(5)
	var to2 int
	const draws = 40000
	for i := 0; i < draws; i++ {
		if ws.Next(0, src) == 2 {
			to2++
		}
	}
	if share := float64(to2) / draws; math.Abs(share-0.75) > 0.02 {
		t.Errorf("weighted share to heavy edge %.3f, want ≈0.75", share)
	}
	// Dead end stays put.
	if ws.Next(2, src) != 2 {
		t.Error("weighted dead-end moved")
	}
}

func TestWeightedSamplerRequiresWeights(t *testing.T) {
	g := lineGraph(t)
	if _, err := NewWeightedSampler(g); err == nil {
		t.Fatal("unweighted graph accepted")
	}
}

func TestWeightedSamplerZeroWeightsFallback(t *testing.T) {
	res, err := graph.Build([]graph.Edge{
		{Src: 0, Dst: 1, Weight: 0},
		{Src: 0, Dst: 2, Weight: 0},
	}, graph.BuildOptions{Weighted: true, NumVertices: 3})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := NewWeightedSampler(res.Graph)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewXorShift64Star(6)
	seen := map[graph.VID]bool{}
	for i := 0; i < 100; i++ {
		seen[ws.Next(0, src)] = true
	}
	if !seen[1] || !seen[2] {
		t.Error("zero-weight fallback not uniform over neighbours")
	}
}
