package algo

import (
	"math"
	"testing"

	"flashmob/internal/graph"
	"flashmob/internal/rng"
)

func TestPrecomputedMatchesRejection(t *testing.T) {
	g := lineGraph(t)
	p, q := 2.0, 0.5
	pc, err := NewNode2VecPrecomputed(g, p, q, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Walker at u=1 arrived from s=0: find the edge index 0→1.
	var incoming uint64
	found := false
	for i, x := range g.Neighbors(0) {
		if x == 1 {
			incoming = g.Offsets[0] + uint64(i)
			found = true
		}
	}
	if !found {
		t.Fatal("edge 0→1 missing")
	}
	const draws = 80000
	srcA := rng.NewXorShift64Star(1)
	srcB := rng.NewXorShift64Star(2)
	pcCounts := map[graph.VID]float64{}
	rejCounts := map[graph.VID]float64{}
	for i := 0; i < draws; i++ {
		nx, _ := pc.Next(1, incoming, srcA)
		pcCounts[nx]++
		rejCounts[NextNode2Vec(g, 0, 1, p, q, srcB)]++
	}
	for _, x := range g.Neighbors(1) {
		a, b := pcCounts[x]/draws, rejCounts[x]/draws
		if math.Abs(a-b) > 0.015 {
			t.Errorf("candidate %d: precomputed %.3f vs rejection %.3f", x, a, b)
		}
	}
}

func TestPrecomputedFullWalkValid(t *testing.T) {
	g := lineGraph(t)
	pc, err := NewNode2VecPrecomputed(g, 1, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewXorShift64Star(3)
	for w := 0; w < 200; w++ {
		cur := graph.VID(uint32(w) % g.NumVertices())
		next, edge, ok := pc.FirstEdge(cur, src)
		if !ok {
			continue
		}
		if !g.HasEdge(cur, next) {
			t.Fatalf("first step %d→%d not an edge", cur, next)
		}
		cur = next
		for s := 0; s < 20; s++ {
			nx, nedge := pc.Next(cur, edge, src)
			if nx == cur && g.Degree(cur) == 0 {
				break // dead end stays
			}
			if !g.HasEdge(cur, nx) {
				t.Fatalf("step %d→%d not an edge", cur, nx)
			}
			cur, edge = nx, nedge
		}
	}
}

func TestPrecomputedMemoryGuard(t *testing.T) {
	g := lineGraph(t)
	if _, err := NewNode2VecPrecomputed(g, 1, 1, 1); err == nil {
		t.Fatal("budget of 1 entry accepted")
	}
	if _, err := NewNode2VecPrecomputed(g, 0, 1, 100); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestPrecomputedEntryCount(t *testing.T) {
	g := lineGraph(t)
	pc, err := NewNode2VecPrecomputed(g, 1, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Entries = Σ over edges (s→u) of d(u).
	var want uint64
	for s := uint32(0); s < g.NumVertices(); s++ {
		for _, u := range g.Neighbors(s) {
			want += uint64(g.Degree(u))
		}
	}
	if got := pc.EntryCount(); got != want {
		t.Errorf("EntryCount = %d, want %d", got, want)
	}
}

func BenchmarkNode2VecRejection(b *testing.B) {
	g := lineGraph(b)
	src := rng.NewXorShift64Star(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NextNode2Vec(g, 0, 1, 2, 0.5, src)
	}
}

func BenchmarkNode2VecPrecomputed(b *testing.B) {
	g := lineGraph(b)
	pc, err := NewNode2VecPrecomputed(g, 2, 0.5, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	incoming := g.Offsets[0] // first edge out of 0
	src := rng.NewXorShift64Star(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc.Next(1, incoming, src)
	}
}
