package mem

// RemoteBase splits the simulated physical address space into NUMA
// domains: addresses at or above RemoteBase live on the remote socket.
const RemoteBase = uint64(1) << 40

// Stats accumulates simulation counters. Served[k][loc] counts accesses of
// kind k satisfied at loc; hit/miss views and time estimates derive from
// it.
type Stats struct {
	// Served[kind][location] counts accesses by where they were served.
	Served [numKinds][numLocations]uint64
	// DRAMBytes counts all line traffic from DRAM, demand plus prefetch.
	DRAMBytes uint64
	// RemoteDRAMBytes is the subset of DRAMBytes from the remote domain.
	RemoteDRAMBytes uint64
	// PrefetchFills counts lines brought in by the stream prefetcher.
	PrefetchFills uint64
	// Accesses counts demand accesses (not prefetches).
	Accesses uint64
	// WriteBytes counts bytes written (writes also allocate).
	WriteBytes uint64
}

// HitsAt returns demand accesses served at loc across all kinds.
func (s *Stats) HitsAt(loc Location) uint64 {
	var n uint64
	for k := 0; k < int(numKinds); k++ {
		n += s.Served[k][loc]
	}
	return n
}

// MissesBelow returns the number of demand accesses that missed at every
// level above loc, i.e. were served at loc or deeper. Misses at level L in
// the perf sense are accesses served deeper than L.
func (s *Stats) MissesBelow(loc Location) uint64 {
	var n uint64
	for l := loc; l < numLocations; l++ {
		n += s.HitsAt(l)
	}
	return n
}

// BoundNS returns the estimated time attributable to accesses served at
// loc, per the latency table.
func (s *Stats) BoundNS(lat *[numKinds][numLocations]float64, loc Location) float64 {
	var t float64
	for k := 0; k < int(numKinds); k++ {
		t += float64(s.Served[k][loc]) * lat[k][loc]
	}
	return t
}

// TotalNS returns the estimated data time of all accesses.
func (s *Stats) TotalNS(lat *[numKinds][numLocations]float64) float64 {
	var t float64
	for loc := Location(0); loc < numLocations; loc++ {
		t += s.BoundNS(lat, loc)
	}
	return t
}

// Add accumulates o into s.
func (s *Stats) Add(o *Stats) {
	for k := range s.Served {
		for l := range s.Served[k] {
			s.Served[k][l] += o.Served[k][l]
		}
	}
	s.DRAMBytes += o.DRAMBytes
	s.RemoteDRAMBytes += o.RemoteDRAMBytes
	s.PrefetchFills += o.PrefetchFills
	s.Accesses += o.Accesses
	s.WriteBytes += o.WriteBytes
}

// stream is one entry of the prefetcher's stream table.
type stream struct {
	nextLine uint64
	lastUse  uint64
}

// Hierarchy simulates one core's view of the memory system: private L1 and
// L2, a shared (but here single-client) L3, a stream prefetcher, and local
// plus remote DRAM.
type Hierarchy struct {
	Geom  Geometry
	Stats Stats

	l1, l2, l3 *cache
	lineShift  uint

	streams [32]stream
	clock   uint64
	regions *regionTable
}

// NewHierarchy builds a simulator for geometry g.
func NewHierarchy(g Geometry) *Hierarchy {
	shift := uint(0)
	for (uint64(1) << shift) < g.LineBytes {
		shift++
	}
	return &Hierarchy{
		Geom:      g,
		l1:        newCache(g.L1, g.LineBytes),
		l2:        newCache(g.L2, g.LineBytes),
		l3:        newCache(g.L3, g.LineBytes),
		lineShift: shift,
	}
}

// NewSharedL3Group builds n per-core hierarchies (private L1, L2, and
// stream prefetcher each) that share a single L3, modelling the paper's
// multi-core socket (§2.3: private L2s, shared LLC). The hierarchies are
// NOT safe for concurrent use — drive them from one goroutine,
// interleaving accesses to model concurrency.
func NewSharedL3Group(g Geometry, n int) []*Hierarchy {
	if n < 1 {
		n = 1
	}
	shift := uint(0)
	for (uint64(1) << shift) < g.LineBytes {
		shift++
	}
	shared := newCache(g.L3, g.LineBytes)
	out := make([]*Hierarchy, n)
	for i := range out {
		out[i] = &Hierarchy{
			Geom:      g,
			l1:        newCache(g.L1, g.LineBytes),
			l2:        newCache(g.L2, g.LineBytes),
			l3:        shared,
			lineShift: shift,
		}
	}
	return out
}

// Reset clears caches and counters (stream table too).
func (h *Hierarchy) Reset() {
	h.l1.reset()
	h.l2.reset()
	h.l3.reset()
	h.Stats = Stats{}
	h.streams = [32]stream{}
	h.clock = 0
}

// Read simulates a load of size bytes at addr with the given dependence
// kind, touching every covered line.
func (h *Hierarchy) Read(addr uint64, size int, kind AccessKind) {
	h.access(addr, size, kind, false)
}

// Write simulates a store (write-allocate, like the hardware).
func (h *Hierarchy) Write(addr uint64, size int, kind AccessKind) {
	h.access(addr, size, kind, true)
}

func (h *Hierarchy) access(addr uint64, size int, kind AccessKind, write bool) {
	if size <= 0 {
		return
	}
	first := addr >> h.lineShift
	last := (addr + uint64(size) - 1) >> h.lineShift
	for line := first; ; line++ {
		h.touch(line, kind)
		if line == last {
			break
		}
	}
	if write {
		h.Stats.WriteBytes += uint64(size)
	}
}

// touch is the per-line state machine.
func (h *Hierarchy) touch(line uint64, kind AccessKind) {
	h.clock++
	h.Stats.Accesses++
	loc := h.demandFill(line)
	h.Stats.Served[kind][loc]++
	h.prefetch(line)
}

// demandFill looks the line up through the hierarchy, performs fills and
// evictions, and returns where the demand access was served.
func (h *Hierarchy) demandFill(line uint64) Location {
	if h.l1.lookup(line) {
		return LocL1
	}
	if h.l2.lookup(line) {
		h.fillL1(line)
		return LocL2
	}
	if h.l3.lookup(line) {
		if h.Geom.LLCPolicy == LLCExclusive {
			// Promotion removes the line from the victim cache.
			h.l3.remove(line)
		}
		h.fillL2(line)
		h.fillL1(line)
		return LocL3
	}
	// DRAM.
	h.Stats.DRAMBytes += h.Geom.LineBytes
	if h.regions != nil {
		h.regions.attribute(line<<h.lineShift, h.Geom.LineBytes)
	}
	remote := line<<h.lineShift >= RemoteBase
	if remote {
		h.Stats.RemoteDRAMBytes += h.Geom.LineBytes
	}
	if h.Geom.LLCPolicy == LLCInclusive {
		h.fillL3(line)
	}
	h.fillL2(line)
	h.fillL1(line)
	if remote {
		return LocRemoteMem
	}
	return LocLocalMem
}

func (h *Hierarchy) fillL1(line uint64) {
	h.l1.insert(line) // L1 victims are already in L2 (mostly-inclusive L1/L2)
}

func (h *Hierarchy) fillL2(line uint64) {
	if victim := h.l2.insert(line); victim != noLine {
		if h.Geom.LLCPolicy == LLCExclusive {
			// Victim cache: L2 evictions land in L3.
			h.l3.insert(victim)
		}
		// L1 must not retain lines L2 lost (keeps L1 ⊆ L2).
		h.l1.remove(victim)
	}
}

func (h *Hierarchy) fillL3(line uint64) {
	if victim := h.l3.insert(line); victim != noLine && h.Geom.LLCPolicy == LLCInclusive {
		// Inclusive back-invalidation.
		h.l2.remove(victim)
		h.l1.remove(victim)
	}
}

// prefetch advances the stream table and issues next-line prefetches into
// L2 when the access continues a detected stream.
func (h *Hierarchy) prefetch(line uint64) {
	depth := h.Geom.PrefetchDepth
	if depth <= 0 {
		return
	}
	// Find a stream expecting this line.
	for i := range h.streams {
		if h.streams[i].nextLine == line && line != 0 {
			h.streams[i].nextLine = line + 1
			h.streams[i].lastUse = h.clock
			for d := 1; d <= depth; d++ {
				h.prefetchLine(line + uint64(d))
			}
			return
		}
	}
	// Allocate the LRU entry to watch for line+1.
	lru := 0
	for i := range h.streams {
		if h.streams[i].lastUse < h.streams[lru].lastUse {
			lru = i
		}
	}
	h.streams[lru] = stream{nextLine: line + 1, lastUse: h.clock}
}

// prefetchLine brings a line into L2 if it is not already cached anywhere,
// counting its DRAM traffic but no demand-access latency.
func (h *Hierarchy) prefetchLine(line uint64) {
	if h.l1.contains(line) || h.l2.contains(line) || h.l3.contains(line) {
		return
	}
	h.Stats.DRAMBytes += h.Geom.LineBytes
	if h.regions != nil {
		h.regions.attribute(line<<h.lineShift, h.Geom.LineBytes)
	}
	if line<<h.lineShift >= RemoteBase {
		h.Stats.RemoteDRAMBytes += h.Geom.LineBytes
	}
	h.Stats.PrefetchFills++
	h.fillL2(line)
}
