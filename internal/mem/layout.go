package mem

import "fmt"

// Layout assigns non-overlapping simulated address ranges to named data
// structures, so trace-driven engines can compute realistic addresses for
// their arrays without owning real memory. Regions are line-aligned and
// padded so distinct structures never share a cache line (mirroring the
// paper's cache-line alignment of per-partition walker data, §4.3).
type Layout struct {
	lineBytes uint64
	next      [2]uint64 // per-domain bump pointer
	regions   []Region
}

// Region is one allocated range.
type Region struct {
	Name string
	Base uint64
	Size uint64
	// Domain is the NUMA domain: 0 local, 1 remote.
	Domain int
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool { return addr >= r.Base && addr < r.End() }

// NewLayout creates an empty layout with the given line size.
func NewLayout(lineBytes uint64) *Layout {
	if lineBytes == 0 {
		lineBytes = 64
	}
	return &Layout{
		lineBytes: lineBytes,
		next:      [2]uint64{lineBytes, RemoteBase + lineBytes},
	}
}

// Alloc reserves size bytes in NUMA domain 0 and returns the region.
func (l *Layout) Alloc(name string, size uint64) Region {
	return l.AllocDomain(name, size, 0)
}

// AllocDomain reserves size bytes in the given NUMA domain.
func (l *Layout) AllocDomain(name string, size uint64, domain int) Region {
	if domain != 0 && domain != 1 {
		panic(fmt.Sprintf("mem: invalid NUMA domain %d", domain))
	}
	// Round the region up to whole lines so neighbours never share lines.
	rounded := (size + l.lineBytes - 1) / l.lineBytes * l.lineBytes
	if rounded == 0 {
		rounded = l.lineBytes
	}
	r := Region{Name: name, Base: l.next[domain], Size: rounded, Domain: domain}
	l.next[domain] += rounded + l.lineBytes // guard line between regions
	l.regions = append(l.regions, r)
	return r
}

// Regions returns all allocations in order.
func (l *Layout) Regions() []Region { return l.regions }

// TotalBytes returns the sum of allocated region sizes in domain d.
func (l *Layout) TotalBytes(d int) uint64 {
	var t uint64
	for _, r := range l.regions {
		if r.Domain == d {
			t += r.Size
		}
	}
	return t
}
