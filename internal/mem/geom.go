// Package mem is a trace-driven memory-hierarchy simulator: set-associative
// LRU caches (L1/L2/L3), a stream prefetcher, NUMA domains, and a latency
// model taken directly from Table 1 of the FlashMob paper.
//
// It substitutes for the hardware performance counters (perf, VTune) the
// paper uses: the walk engines in internal/sim emit the same address
// sequences their real counterparts generate, and the simulator reports
// per-level hit/miss counts, DRAM traffic, and estimated data-bound time —
// exactly the quantities in the paper's Figure 1b and Table 5.
//
// Go offers no portable PMU access and its GC perturbs data layout, so a
// simulator is the faithful way to measure cache behaviour of these access
// patterns; absolute wall-clock performance is measured separately by the
// real engines in internal/core and internal/baseline.
package mem

// AccessKind classifies a memory access by the dependence structure the
// issuing code has, which determines how much memory-level parallelism the
// hardware can extract (paper Table 1 rows).
type AccessKind int

const (
	// Seq is a streaming access adjacent to the previous one in its
	// stream; hardware prefetching and pipelining hide nearly all latency.
	Seq AccessKind = iota
	// Rand is an independent random access: no pointer dependence, so
	// multiple misses overlap.
	Rand
	// Chase is a dependent (pointer-chasing) access: the address derives
	// from the previous load's value, serializing misses.
	Chase
	numKinds
)

// String returns the paper's row label for the kind.
func (k AccessKind) String() string {
	switch k {
	case Seq:
		return "Sequential read"
	case Rand:
		return "Random read"
	case Chase:
		return "Pointer-chasing"
	default:
		return "unknown"
	}
}

// Location identifies where an access was served.
type Location int

const (
	LocL1 Location = iota
	LocL2
	LocL3
	LocLocalMem
	LocRemoteMem
	numLocations
)

// String returns the paper's column label for the location.
func (l Location) String() string {
	switch l {
	case LocL1:
		return "L1C"
	case LocL2:
		return "L2C"
	case LocL3:
		return "L3C"
	case LocLocalMem:
		return "LocalMem"
	case LocRemoteMem:
		return "RemoteMem"
	default:
		return "unknown"
	}
}

// LLCPolicy selects the last-level-cache management scheme the paper
// contrasts (§2.3): Broadwell-style inclusive vs Skylake-style exclusive
// (victim) L3.
type LLCPolicy int

const (
	// LLCExclusive fills misses directly into L2; L3 holds only L2
	// victims (Skylake and later).
	LLCExclusive LLCPolicy = iota
	// LLCInclusive fills L3 on every miss and back-invalidates inner
	// levels when an L3 line is evicted (Broadwell and earlier).
	LLCInclusive
)

// LevelGeom describes one cache level.
type LevelGeom struct {
	SizeBytes uint64
	Assoc     int
}

// Geometry is the full machine description.
type Geometry struct {
	LineBytes uint64
	L1, L2    LevelGeom
	// L3 is the per-socket shared capacity.
	L3        LevelGeom
	LLCPolicy LLCPolicy
	// PrefetchDepth is how many lines ahead the stream prefetcher runs; 0
	// disables prefetching.
	PrefetchDepth int
	// Latency[kind][location] is the per-access cost in nanoseconds.
	Latency [numKinds][numLocations]float64
}

// PaperLatency is Table 1 of the paper, measured on a Xeon Gold 6126
// (ns per load): rows Seq/Rand/Chase, columns L1C/L2C/L3C/Local/Remote.
var PaperLatency = [numKinds][numLocations]float64{
	Seq:   {0.42, 0.41, 0.44, 0.76, 1.51},
	Rand:  {0.77, 0.95, 2.60, 18.35, 24.35},
	Chase: {1.69, 5.26, 19.26, 116.90, 194.26},
}

// PaperGeometry returns the evaluation platform of the paper: Xeon Gold
// 6126 with 32KB/8-way L1D, 1MB/16-way L2, 19.75MB/11-way shared exclusive
// L3, 64B lines.
func PaperGeometry() Geometry {
	return Geometry{
		LineBytes:     64,
		L1:            LevelGeom{SizeBytes: 32 << 10, Assoc: 8},
		L2:            LevelGeom{SizeBytes: 1 << 20, Assoc: 16},
		L3:            LevelGeom{SizeBytes: 19*(1<<20) + 768<<10, Assoc: 11},
		LLCPolicy:     LLCExclusive,
		PrefetchDepth: 4,
		Latency:       PaperLatency,
	}
}

// BroadwellGeometry returns a prior-generation configuration: 256KB L2,
// 2.5MB/core inclusive L3 (scaled to a 12-core socket: 30MB), used by the
// inclusive-vs-exclusive ablation.
func BroadwellGeometry() Geometry {
	g := PaperGeometry()
	g.L2 = LevelGeom{SizeBytes: 256 << 10, Assoc: 8}
	g.L3 = LevelGeom{SizeBytes: 30 << 20, Assoc: 20}
	g.LLCPolicy = LLCInclusive
	return g
}

// ScaledGeometry shrinks the paper geometry by div while preserving shape.
// Trace simulation of full-size graphs is too slow for unit tests; scaling
// the caches together with the graphs preserves the fit relationships
// (which working set fits in which level) that drive all results.
func ScaledGeometry(div uint64) Geometry {
	if div == 0 {
		div = 1
	}
	g := PaperGeometry()
	g.L1.SizeBytes /= div
	g.L2.SizeBytes /= div
	g.L3.SizeBytes /= div
	return g
}
