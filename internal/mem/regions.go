package mem

import "sort"

// regionTable attributes DRAM traffic to named regions.
type regionTable struct {
	bases []uint64
	ends  []uint64
	names []string
	bytes map[string]uint64
}

// AttributeRegions attaches a region table to the hierarchy: every DRAM
// line fill (demand or prefetch) from then on is attributed to the region
// containing its address. Useful for Table 5-style analysis of where a
// workload's memory traffic comes from (graph arrays vs walker arrays vs
// pre-sample buffers).
func (h *Hierarchy) AttributeRegions(regions []Region) {
	rt := &regionTable{bytes: make(map[string]uint64)}
	sorted := append([]Region(nil), regions...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Base < sorted[j].Base })
	for _, r := range sorted {
		rt.bases = append(rt.bases, r.Base)
		rt.ends = append(rt.ends, r.End())
		rt.names = append(rt.names, r.Name)
		rt.bytes[r.Name] = 0
	}
	h.regions = rt
}

// RegionDRAMBytes returns the per-region DRAM traffic recorded since
// AttributeRegions; nil if attribution was never enabled. Addresses
// outside every region are accounted under "".
func (h *Hierarchy) RegionDRAMBytes() map[string]uint64 {
	if h.regions == nil {
		return nil
	}
	return h.regions.bytes
}

// attribute charges n bytes of DRAM traffic at addr.
func (rt *regionTable) attribute(addr uint64, n uint64) {
	i := sort.Search(len(rt.bases), func(i int) bool { return rt.bases[i] > addr }) - 1
	if i < 0 || addr >= rt.ends[i] {
		rt.bytes[""] += n
		return
	}
	rt.bytes[rt.names[i]] += n
}
