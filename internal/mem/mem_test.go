package mem

import (
	"testing"

	"flashmob/internal/rng"
)

func testGeom() Geometry {
	g := PaperGeometry()
	// Tiny caches make eviction behaviour testable with small traces.
	g.L1 = LevelGeom{SizeBytes: 512, Assoc: 2}  // 4 sets
	g.L2 = LevelGeom{SizeBytes: 2048, Assoc: 4} // 8 sets
	g.L3 = LevelGeom{SizeBytes: 8192, Assoc: 4} // 32 sets
	g.PrefetchDepth = 0
	return g
}

func TestCacheHitAfterInsert(t *testing.T) {
	c := newCache(LevelGeom{SizeBytes: 1024, Assoc: 4}, 64)
	if c.lookup(5) {
		t.Fatal("hit in empty cache")
	}
	c.insert(5)
	if !c.lookup(5) {
		t.Fatal("miss after insert")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 1 set, 2-way: inserting 3 distinct conflicting lines evicts LRU.
	c := newCache(LevelGeom{SizeBytes: 128, Assoc: 2}, 64)
	c.insert(0)
	c.insert(1)
	if ev := c.insert(2); ev != 0 {
		t.Fatalf("evicted %d, want 0 (LRU)", ev)
	}
	if c.contains(0) {
		t.Fatal("evicted line still present")
	}
	// Touch 1 to promote it; then inserting 3 must evict 2.
	c.lookup(1)
	if ev := c.insert(3); ev != 2 {
		t.Fatalf("evicted %d, want 2 after promoting 1", ev)
	}
}

func TestCacheRemove(t *testing.T) {
	c := newCache(LevelGeom{SizeBytes: 1024, Assoc: 4}, 64)
	c.insert(9)
	if !c.remove(9) {
		t.Fatal("remove reported absent")
	}
	if c.contains(9) {
		t.Fatal("line survived remove")
	}
	if c.remove(9) {
		t.Fatal("second remove reported present")
	}
}

func TestCacheInsertExistingPromotes(t *testing.T) {
	c := newCache(LevelGeom{SizeBytes: 128, Assoc: 2}, 64)
	c.insert(0)
	c.insert(1)
	if ev := c.insert(0); ev != noLine {
		t.Fatalf("re-insert evicted %d", ev)
	}
	if ev := c.insert(2); ev != 1 {
		t.Fatalf("evicted %d, want 1 (0 was promoted)", ev)
	}
}

func TestHierarchyL1Hit(t *testing.T) {
	h := NewHierarchy(testGeom())
	h.Read(0, 8, Rand)
	h.Read(0, 8, Rand)
	if h.Stats.Served[Rand][LocL1] != 1 {
		t.Fatalf("L1 hits = %d, want 1", h.Stats.Served[Rand][LocL1])
	}
	if h.Stats.Served[Rand][LocLocalMem] != 1 {
		t.Fatalf("DRAM accesses = %d, want 1", h.Stats.Served[Rand][LocLocalMem])
	}
}

func TestHierarchySameLineCoalesced(t *testing.T) {
	h := NewHierarchy(testGeom())
	h.Read(0, 8, Seq)
	h.Read(8, 8, Seq) // same 64B line → L1 hit
	if h.Stats.Served[Seq][LocL1] != 1 {
		t.Fatalf("second access on same line not an L1 hit: %+v", h.Stats.Served)
	}
}

func TestHierarchyMultiLineAccess(t *testing.T) {
	h := NewHierarchy(testGeom())
	h.Read(0, 256, Seq) // touches 4 lines
	if h.Stats.Accesses != 4 {
		t.Fatalf("accesses = %d, want 4", h.Stats.Accesses)
	}
}

func TestHierarchyWorkingSetInL2(t *testing.T) {
	// Working set bigger than L1 (512B) but within L2 (2KB): after a warm
	// pass, random accesses should be served by L1+L2, never DRAM.
	h := NewHierarchy(testGeom())
	const ws = 1536
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < ws; a += 64 {
			h.Read(a, 8, Rand)
		}
	}
	if h.Stats.Served[Rand][LocLocalMem] != ws/64 {
		t.Fatalf("DRAM accesses = %d, want %d (cold pass only)",
			h.Stats.Served[Rand][LocLocalMem], ws/64)
	}
	warmHits := h.Stats.Served[Rand][LocL1] + h.Stats.Served[Rand][LocL2]
	if warmHits != ws/64 {
		t.Fatalf("warm pass hits = %d, want %d", warmHits, ws/64)
	}
}

func TestExclusiveL3HoldsVictims(t *testing.T) {
	g := testGeom()
	h := NewHierarchy(g)
	// Stream through 2x the L2 size: early lines get evicted from L2 into
	// L3 (exclusive victim cache). Re-reading them should hit L3, not DRAM.
	const span = 4096
	for a := uint64(0); a < span; a += 64 {
		h.Read(a, 8, Rand)
	}
	before := h.Stats.Served[Rand][LocLocalMem]
	for a := uint64(0); a < span; a += 64 {
		h.Read(a, 8, Rand)
	}
	after := h.Stats.Served[Rand][LocLocalMem]
	if after != before {
		t.Fatalf("%d re-reads went to DRAM; want all served from caches (L3 victims)", after-before)
	}
	if h.Stats.Served[Rand][LocL3] == 0 {
		t.Fatal("no L3 hits; victim cache not working")
	}
}

func TestInclusiveBackInvalidation(t *testing.T) {
	g := testGeom()
	g.LLCPolicy = LLCInclusive
	g.L3 = LevelGeom{SizeBytes: 1024, Assoc: 2} // L3 smaller than L2: forces back-invalidation
	h := NewHierarchy(g)
	// Touch more lines than L3 holds; inclusive policy must back-invalidate
	// inner copies, so a second pass cannot be served entirely from L1/L2.
	const span = 4096
	for a := uint64(0); a < span; a += 64 {
		h.Read(a, 8, Rand)
	}
	before := h.Stats.Served[Rand][LocLocalMem]
	for a := uint64(0); a < span; a += 64 {
		h.Read(a, 8, Rand)
	}
	if h.Stats.Served[Rand][LocLocalMem] == before {
		t.Fatal("inclusive L3 smaller than L2 must force DRAM re-reads via back-invalidation")
	}
}

func TestPrefetcherMakesScansCheap(t *testing.T) {
	g := testGeom()
	g.PrefetchDepth = 4
	h := NewHierarchy(g)
	// Long sequential scan: after the first few lines the stream detector
	// should prefetch ahead, so most demand accesses are L1/L2 hits.
	const lines = 512
	for a := uint64(0); a < lines*64; a += 64 {
		h.Read(a, 8, Seq)
	}
	dram := h.Stats.Served[Seq][LocLocalMem]
	if dram > lines/8 {
		t.Fatalf("%d/%d scan accesses hit DRAM; prefetcher ineffective", dram, lines)
	}
	// All lines still produce DRAM traffic exactly once.
	wantBytes := uint64(lines * 64)
	slack := uint64(g.PrefetchDepth) * 64 // prefetcher may run past the end
	if h.Stats.DRAMBytes < wantBytes || h.Stats.DRAMBytes > wantBytes+slack {
		t.Fatalf("DRAM bytes = %d, want ≈%d", h.Stats.DRAMBytes, wantBytes)
	}
}

func TestPrefetcherOffRandomAccessGoesToDRAM(t *testing.T) {
	h := NewHierarchy(testGeom())
	src := rng.NewXorShift64Star(3)
	// Random accesses over a space far exceeding total cache: nearly all
	// should be DRAM-served.
	const n = 2000
	for i := 0; i < n; i++ {
		h.Read(rng.Uint64n(src, 1<<26)&^63, 8, Rand)
	}
	if h.Stats.Served[Rand][LocLocalMem] < n*9/10 {
		t.Fatalf("only %d/%d random accesses reached DRAM", h.Stats.Served[Rand][LocLocalMem], n)
	}
}

func TestRemoteDomainAccounting(t *testing.T) {
	h := NewHierarchy(testGeom())
	h.Read(RemoteBase+128, 8, Rand)
	if h.Stats.Served[Rand][LocRemoteMem] != 1 {
		t.Fatalf("remote access not classified: %+v", h.Stats.Served)
	}
	if h.Stats.RemoteDRAMBytes != 64 {
		t.Fatalf("remote bytes = %d, want 64", h.Stats.RemoteDRAMBytes)
	}
}

func TestStatsMath(t *testing.T) {
	var s Stats
	s.Served[Rand][LocL1] = 10
	s.Served[Rand][LocL2] = 5
	s.Served[Seq][LocL3] = 3
	s.Served[Chase][LocLocalMem] = 2
	if got := s.HitsAt(LocL1); got != 10 {
		t.Errorf("HitsAt(L1) = %d", got)
	}
	if got := s.MissesBelow(LocL2); got != 10 {
		t.Errorf("MissesBelow(L2) = %d, want 10 (5+3+2)", got)
	}
	lat := PaperLatency
	wantDRAM := 2 * 116.90
	if got := s.BoundNS(&lat, LocLocalMem); got != wantDRAM {
		t.Errorf("BoundNS(DRAM) = %v, want %v", got, wantDRAM)
	}
	total := 10*0.77 + 5*0.95 + 3*0.44 + wantDRAM
	if got := s.TotalNS(&lat); got != total {
		t.Errorf("TotalNS = %v, want %v", got, total)
	}
	var s2 Stats
	s2.Add(&s)
	s2.Add(&s)
	if s2.Served[Rand][LocL1] != 20 {
		t.Errorf("Add failed: %+v", s2.Served[Rand][LocL1])
	}
}

func TestLatencyTableOrdering(t *testing.T) {
	// Structural sanity of the paper's Table 1: each kind gets slower down
	// the hierarchy, and Seq < Rand < Chase at every level.
	for k := AccessKind(0); k < numKinds; k++ {
		for l := LocL2; l < numLocations; l++ {
			if k != Seq && PaperLatency[k][l] < PaperLatency[k][l-1] {
				t.Errorf("kind %v: latency not monotone at %v", k, l)
			}
		}
	}
	for l := Location(0); l < numLocations; l++ {
		if !(PaperLatency[Seq][l] <= PaperLatency[Rand][l] && PaperLatency[Rand][l] <= PaperLatency[Chase][l]) {
			t.Errorf("location %v: kind ordering violated", l)
		}
	}
}

func TestLayoutNonOverlapping(t *testing.T) {
	l := NewLayout(64)
	a := l.Alloc("a", 100)
	b := l.Alloc("b", 1)
	c := l.AllocDomain("c", 64, 1)
	if a.End() > b.Base {
		t.Fatalf("regions overlap: a=%+v b=%+v", a, b)
	}
	if b.Base-a.End() < 64 {
		t.Fatal("missing guard line between regions")
	}
	if c.Base < RemoteBase {
		t.Fatalf("remote region below RemoteBase: %+v", c)
	}
	if !a.Contains(a.Base) || a.Contains(a.End()) {
		t.Fatal("Contains boundary wrong")
	}
	if l.TotalBytes(0) != a.Size+b.Size {
		t.Fatalf("TotalBytes(0) = %d", l.TotalBytes(0))
	}
}

func TestHierarchyReset(t *testing.T) {
	h := NewHierarchy(testGeom())
	h.Read(0, 8, Rand)
	h.Reset()
	if h.Stats.Accesses != 0 {
		t.Fatal("stats survived reset")
	}
	h.Read(0, 8, Rand)
	if h.Stats.Served[Rand][LocLocalMem] != 1 {
		t.Fatal("cache content survived reset")
	}
}

func TestScaledGeometry(t *testing.T) {
	g := ScaledGeometry(16)
	p := PaperGeometry()
	if g.L1.SizeBytes != p.L1.SizeBytes/16 || g.L3.SizeBytes != p.L3.SizeBytes/16 {
		t.Fatal("scaling wrong")
	}
	if ScaledGeometry(0).L1.SizeBytes != p.L1.SizeBytes {
		t.Fatal("div 0 should be identity")
	}
}

func TestWriteAllocates(t *testing.T) {
	h := NewHierarchy(testGeom())
	h.Write(0, 8, Seq)
	h.Read(0, 8, Rand)
	if h.Stats.Served[Rand][LocL1] != 1 {
		t.Fatal("write did not allocate the line")
	}
	if h.Stats.WriteBytes != 8 {
		t.Fatalf("WriteBytes = %d", h.Stats.WriteBytes)
	}
}

func TestHitsMissesConservation(t *testing.T) {
	// Property: every demand access is served somewhere, so
	// Σ HitsAt(level) == Accesses, and MissesBelow(L1) == Accesses.
	h := NewHierarchy(testGeom())
	src := rng.NewXorShift64Star(61)
	for i := 0; i < 5000; i++ {
		h.Read(rng.Uint64n(src, 1<<22)&^7, 8, AccessKind(i%3))
	}
	var served uint64
	for loc := LocL1; loc < numLocations; loc++ {
		served += h.Stats.HitsAt(loc)
	}
	if served != h.Stats.Accesses {
		t.Fatalf("served %d != accesses %d", served, h.Stats.Accesses)
	}
	if h.Stats.MissesBelow(LocL1) != h.Stats.Accesses {
		t.Fatalf("MissesBelow(L1) = %d, want all %d", h.Stats.MissesBelow(LocL1), h.Stats.Accesses)
	}
	// Misses are monotone down the hierarchy.
	for loc := LocL2; loc <= LocRemoteMem; loc++ {
		if h.Stats.MissesBelow(loc) > h.Stats.MissesBelow(loc-1) {
			t.Fatalf("misses not monotone at %v", loc)
		}
	}
}

func TestSetConflictEviction(t *testing.T) {
	// Lines mapping to one set evict each other even when the cache has
	// spare capacity elsewhere — set-associativity, not full LRU.
	g := testGeom() // L1: 4 sets, 2-way
	g.PrefetchDepth = 0
	h := NewHierarchy(g)
	setStride := uint64(4 * 64) // same set every 4 lines
	for i := uint64(0); i < 3; i++ {
		h.Read(i*setStride, 8, Rand)
	}
	// The first line must have left L1 (evicted by the 2 conflicting
	// follows) even though other sets are empty; it is still in L2.
	h.Read(0, 8, Rand)
	if h.Stats.Served[Rand][LocL2] == 0 {
		t.Fatalf("conflicting line not demoted to L2: %+v", h.Stats.Served[Rand])
	}
}
