package mem

// cache is one set-associative LRU cache level operating on line
// addresses (byte address >> lineShift).
type cache struct {
	sets    [][]uint64 // each set holds line addresses, MRU first
	numSets uint64
	assoc   int
}

// noLine is the sentinel for "no eviction happened".
const noLine = ^uint64(0)

func newCache(g LevelGeom, lineBytes uint64) *cache {
	if g.SizeBytes == 0 || g.Assoc <= 0 {
		return &cache{numSets: 1, assoc: 1, sets: make([][]uint64, 1)}
	}
	numSets := g.SizeBytes / (lineBytes * uint64(g.Assoc))
	if numSets == 0 {
		numSets = 1
	}
	c := &cache{
		sets:    make([][]uint64, numSets),
		numSets: numSets,
		assoc:   g.Assoc,
	}
	return c
}

// lookup reports whether line is cached and, on a hit, promotes it to MRU.
func (c *cache) lookup(line uint64) bool {
	set := c.sets[line%c.numSets]
	for i, l := range set {
		if l == line {
			copy(set[1:i+1], set[:i])
			set[0] = line
			return true
		}
	}
	return false
}

// contains reports presence without touching recency.
func (c *cache) contains(line uint64) bool {
	for _, l := range c.sets[line%c.numSets] {
		if l == line {
			return true
		}
	}
	return false
}

// insert places line at MRU, returning the evicted line or noLine. If the
// line is already present it is just promoted.
func (c *cache) insert(line uint64) (evicted uint64) {
	idx := line % c.numSets
	set := c.sets[idx]
	for i, l := range set {
		if l == line {
			copy(set[1:i+1], set[:i])
			set[0] = line
			return noLine
		}
	}
	if len(set) < c.assoc {
		set = append(set, 0)
		copy(set[1:], set)
		set[0] = line
		c.sets[idx] = set
		return noLine
	}
	evicted = set[len(set)-1]
	copy(set[1:], set)
	set[0] = line
	return evicted
}

// remove deletes line if present (used by the exclusive-L3 promotion path
// and inclusive back-invalidation). Reports whether it was present.
func (c *cache) remove(line uint64) bool {
	idx := line % c.numSets
	set := c.sets[idx]
	for i, l := range set {
		if l == line {
			c.sets[idx] = append(set[:i], set[i+1:]...)
			return true
		}
	}
	return false
}

// reset empties the cache.
func (c *cache) reset() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
}
