package mem

import (
	"testing"

	"flashmob/internal/rng"
)

// TestSimulatedTable1 drives the three Table 1 micro-kernels (sequential
// scan, independent random reads, pointer chase) through the simulator at
// working sets fitting each level, and checks the average simulated cost
// per load approaches the corresponding latency-table cell. This closes
// the loop: the simulator's behavioural model reproduces the measurements
// it was parameterized with.
func TestSimulatedTable1(t *testing.T) {
	geom := PaperGeometry()
	cases := []struct {
		name string
		ws   uint64
		loc  Location
	}{
		{"L1", geom.L1.SizeBytes / 2, LocL1},
		{"L2", geom.L2.SizeBytes / 2, LocL2},
		{"L3", geom.L3.SizeBytes / 2, LocL3},
		{"DRAM", geom.L3.SizeBytes * 16, LocLocalMem},
	}
	const loads = 200000
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			lines := tc.ws / geom.LineBytes

			// Sequential scan: repeated passes over the buffer. After the
			// warm pass, demand accesses hit L1/L2 (same line or
			// prefetched); per-load cost must be well below the random
			// cost at this level.
			h := NewHierarchy(geom)
			addr := uint64(0)
			for i := 0; i < loads; i++ {
				h.Read(addr%tc.ws, 8, Seq)
				addr += 8
			}
			seqNS := h.Stats.TotalNS(&geom.Latency) / loads

			// Independent random reads over the working set.
			h2 := NewHierarchy(geom)
			src := rng.NewXorShift64Star(7)
			// Warm pass so residency reflects steady state.
			for l := uint64(0); l < lines; l++ {
				h2.Read(l*geom.LineBytes, 8, Rand)
			}
			h2.Stats = Stats{}
			for i := 0; i < loads; i++ {
				l := rng.Uint64n(src, lines)
				h2.Read(l*geom.LineBytes, 8, Rand)
			}
			randNS := h2.Stats.TotalNS(&geom.Latency) / loads

			// Pointer chase over the same working set (same residency,
			// Chase-kind accounting).
			h3 := NewHierarchy(geom)
			for l := uint64(0); l < lines; l++ {
				h3.Read(l*geom.LineBytes, 8, Chase)
			}
			h3.Stats = Stats{}
			for i := 0; i < loads; i++ {
				l := rng.Uint64n(src, lines)
				h3.Read(l*geom.LineBytes, 8, Chase)
			}
			chaseNS := h3.Stats.TotalNS(&geom.Latency) / loads

			wantRand := geom.Latency[Rand][tc.loc]
			wantChase := geom.Latency[Chase][tc.loc]
			// Steady-state random/chase loads should be within 2x of the
			// table cell (set-conflict spill to the next level accounts
			// for the slack).
			if randNS < wantRand*0.8 || randNS > wantRand*2.5 {
				t.Errorf("random: %.2f ns/load, table says %.2f", randNS, wantRand)
			}
			if chaseNS < wantChase*0.8 || chaseNS > wantChase*2.5 {
				t.Errorf("chase: %.2f ns/load, table says %.2f", chaseNS, wantChase)
			}
			// Sequential is far cheaper than random at every level beyond
			// L1.
			if tc.loc != LocL1 && seqNS > randNS {
				t.Errorf("sequential %.2f ns/load not below random %.2f", seqNS, randNS)
			}
			t.Logf("%s: seq %.2f rand %.2f (table %.2f) chase %.2f (table %.2f)",
				tc.name, seqNS, randNS, wantRand, chaseNS, wantChase)
		})
	}
}
