package mem

import "testing"

func TestRegionAttribution(t *testing.T) {
	g := testGeom()
	h := NewHierarchy(g)
	l := NewLayout(64)
	a := l.Alloc("graph", 4096)
	b := l.Alloc("walkers", 4096)
	h.AttributeRegions(l.Regions())

	// Touch 4 distinct lines of "graph" and 2 of "walkers".
	for i := uint64(0); i < 4; i++ {
		h.Read(a.Base+i*64, 8, Rand)
	}
	for i := uint64(0); i < 2; i++ {
		h.Read(b.Base+i*64, 8, Rand)
	}
	// And one address outside any region.
	h.Read(1<<30, 8, Rand)

	got := h.RegionDRAMBytes()
	if got["graph"] != 4*64 {
		t.Errorf("graph traffic = %d, want 256", got["graph"])
	}
	if got["walkers"] != 2*64 {
		t.Errorf("walkers traffic = %d, want 128", got["walkers"])
	}
	if got[""] != 64 {
		t.Errorf("unattributed traffic = %d, want 64", got[""])
	}
}

func TestRegionAttributionDisabled(t *testing.T) {
	h := NewHierarchy(testGeom())
	h.Read(0, 8, Rand)
	if h.RegionDRAMBytes() != nil {
		t.Error("attribution reported without being enabled")
	}
}

func TestRegionAttributionCountsPrefetch(t *testing.T) {
	g := testGeom()
	g.PrefetchDepth = 4
	h := NewHierarchy(g)
	l := NewLayout(64)
	r := l.Alloc("stream", 1<<16)
	h.AttributeRegions(l.Regions())
	for a := uint64(0); a < 64*64; a += 64 {
		h.Read(r.Base+a, 8, Seq)
	}
	got := h.RegionDRAMBytes()["stream"]
	if got < 64*64 {
		t.Errorf("stream traffic %d below demand volume; prefetch fills not attributed", got)
	}
}
