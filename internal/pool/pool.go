// Package pool provides a persistent worker pool with phase barriers.
//
// FlashMob's pipeline alternates between stages (count, scatter, sample,
// gather) millions of times per run; spawning a fresh wave of goroutines
// for every stage of every step costs both the spawn itself and the loss
// of the scheduler's thread affinity. A Pool instead parks one goroutine
// per worker for the lifetime of the engine and replays them through
// Task phases: a phase barrier costs two channel operations per worker
// and allocates nothing in steady state.
//
// Submit is the phase-submission path shared by concurrent sessions: any
// number of goroutines may Submit phases and the pool multiplexes them,
// running one phase at a time across the full worker set. Each
// submission carries its own observability hooks — an obs.PoolMetrics
// (per-worker busy time, barrier wait, run count) and a pprof label
// context applied to the workers for the duration of the phase — so
// concurrent sessions account their pool time separately. Both are nil
// by default and cost one nil check per phase when off. Run/RunCtx are
// the single-owner convenience forms, paired with SetMetrics.
package pool

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"flashmob/internal/obs"
)

// Task is a unit of phased parallel work. RunShard executes one phase's
// shard on one worker; implementations split their data by (worker,
// workers) — contiguous ranges, strided bins, or a shared atomic counter.
type Task interface {
	RunShard(phase, worker, workers int)
}

// Pool is the owner handle of a persistent worker set. The worker
// goroutines reference only the inner state, so dropping the last handle
// makes the pool collectable and a finalizer releases the parked workers;
// call Close to release them deterministically.
type Pool struct {
	*pool
}

type pool struct {
	workers int
	metrics *obs.PoolMetrics // Run/RunCtx default accounting (nil: none)
	start   []chan struct{}
	wg      sync.WaitGroup
	once    sync.Once

	// mu serializes Submit's multi-worker path: concurrent submitters
	// each get the whole worker set for one phase at a time, so the
	// in-flight fields below are owned by exactly one submission.
	mu    sync.Mutex
	task  Task
	phase int
	ctx   context.Context  // pprof label context for the current phase (nil: none)
	curM  *obs.PoolMetrics // the current submission's accounting (nil: none)
}

// New builds a pool of the given size (≤ 0 means 1). Worker 0 is the
// caller's own slot: a pool of n spawns n-1 goroutines, so a size-1 pool
// is free and runs everything inline.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = 1
	}
	in := &pool{workers: workers}
	in.start = make([]chan struct{}, workers-1)
	for i := range in.start {
		in.start[i] = make(chan struct{}, 1)
		go in.work(i+1, in.start[i])
	}
	h := &Pool{in}
	runtime.SetFinalizer(h, func(h *Pool) { h.pool.close() })
	return h
}

func (p *pool) work(worker int, start <-chan struct{}) {
	for range start {
		if p.ctx != nil {
			pprof.SetGoroutineLabels(p.ctx)
		}
		if m := p.curM; m != nil {
			t0 := time.Now()
			p.task.RunShard(p.phase, worker, p.workers)
			m.BusyNS.Add(worker, uint64(time.Since(t0)))
		} else {
			p.task.RunShard(p.phase, worker, p.workers)
		}
		p.wg.Done()
	}
}

// Workers returns the pool size, including the caller's slot 0.
func (p *pool) Workers() int { return p.workers }

// SetMetrics attaches (or, with nil, detaches) the default accounting
// used by Run and RunCtx. The metric vector must be sized for Workers
// slots. Not safe to call concurrently with Run; Submit callers pass
// their accounting per submission instead.
func (p *pool) SetMetrics(m *obs.PoolMetrics) { p.metrics = m }

// Run executes one phase of t on every worker and returns when all shards
// have finished (a phase barrier). The caller runs shard 0 itself.
// Steady-state calls perform no allocations and create no goroutines.
func (p *pool) Run(t Task, phase int) { p.Submit(t, phase, nil, p.metrics) }

// RunCtx is Run with a pprof label context: every worker (including the
// caller's slot) carries ctx's labels while executing its shard, so CPU
// profiles split by stage. The caller's own labels are restored before
// returning; a nil ctx leaves labels untouched.
func (p *pool) RunCtx(t Task, phase int, ctx context.Context) {
	p.Submit(t, phase, ctx, p.metrics)
}

// Submit executes one phase of t across the full worker set and returns
// when all shards have finished — the phase barrier shared by concurrent
// sessions. Submissions from different goroutines are serialized: each
// phase gets every worker, so multiplexing N sessions interleaves their
// phases rather than splitting the workers. The submitting goroutine
// runs shard 0 itself; m (which must be sized for Workers slots) and ctx
// attach this submission's accounting and pprof labels, either may be
// nil. Steady-state calls perform no allocations and create no
// goroutines.
func (p *pool) Submit(t Task, phase int, ctx context.Context, m *obs.PoolMetrics) {
	if p.workers == 1 {
		// Inline path: no shared in-flight state is touched, so
		// single-worker submissions need no serialization.
		if ctx != nil {
			pprof.SetGoroutineLabels(ctx)
		}
		if m != nil {
			t0 := time.Now()
			t.RunShard(phase, 0, 1)
			m.BusyNS.Add(0, uint64(time.Since(t0)))
			m.Runs.Inc()
		} else {
			t.RunShard(phase, 0, 1)
		}
		if ctx != nil {
			pprof.SetGoroutineLabels(context.Background())
		}
		return
	}
	p.mu.Lock()
	p.task, p.phase, p.ctx, p.curM = t, phase, ctx, m
	p.wg.Add(p.workers - 1)
	for _, ch := range p.start {
		ch <- struct{}{}
	}
	if ctx != nil {
		pprof.SetGoroutineLabels(ctx)
	}
	if m != nil {
		t0 := time.Now()
		t.RunShard(phase, 0, p.workers)
		done := time.Now()
		m.BusyNS.Add(0, uint64(done.Sub(t0)))
		p.wg.Wait()
		m.BarrierWaitNS.Add(uint64(time.Since(done)))
		m.Runs.Inc()
	} else {
		t.RunShard(phase, 0, p.workers)
		p.wg.Wait()
	}
	if ctx != nil {
		pprof.SetGoroutineLabels(context.Background())
	}
	p.task, p.ctx, p.curM = nil, nil, nil
	p.mu.Unlock()
}

// Close releases the worker goroutines. It is idempotent; the pool must
// not be Run afterwards.
func (p *Pool) Close() {
	runtime.SetFinalizer(p, nil)
	p.pool.close()
}

func (p *pool) close() {
	p.once.Do(func() {
		for _, ch := range p.start {
			close(ch)
		}
	})
}
