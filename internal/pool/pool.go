// Package pool provides a persistent worker pool with phase barriers.
//
// FlashMob's pipeline alternates between stages (count, scatter, sample,
// gather) millions of times per run; spawning a fresh wave of goroutines
// for every stage of every step costs both the spawn itself and the loss
// of the scheduler's thread affinity. A Pool instead parks one goroutine
// per worker for the lifetime of the engine and replays them through
// Task phases: Run is a phase barrier that costs two channel operations
// per worker and allocates nothing in steady state.
//
// The pool carries the engine's observability hooks: SetMetrics attaches
// an obs.PoolMetrics (per-worker busy time, barrier wait, run count) and
// RunCtx labels the workers with a pprof label context for the duration
// of a phase, so CPU profiles attribute stage time out of the box. Both
// are nil by default and cost one nil check per phase when off.
package pool

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"flashmob/internal/obs"
)

// Task is a unit of phased parallel work. RunShard executes one phase's
// shard on one worker; implementations split their data by (worker,
// workers) — contiguous ranges, strided bins, or a shared atomic counter.
type Task interface {
	RunShard(phase, worker, workers int)
}

// Pool is the owner handle of a persistent worker set. The worker
// goroutines reference only the inner state, so dropping the last handle
// makes the pool collectable and a finalizer releases the parked workers;
// call Close to release them deterministically.
type Pool struct {
	*pool
}

type pool struct {
	workers int
	task    Task
	phase   int
	ctx     context.Context  // pprof label context for the current phase (nil: none)
	metrics *obs.PoolMetrics // nil: no accounting
	start   []chan struct{}
	wg      sync.WaitGroup
	once    sync.Once
}

// New builds a pool of the given size (≤ 0 means 1). Worker 0 is the
// caller's own slot: a pool of n spawns n-1 goroutines, so a size-1 pool
// is free and runs everything inline.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = 1
	}
	in := &pool{workers: workers}
	in.start = make([]chan struct{}, workers-1)
	for i := range in.start {
		in.start[i] = make(chan struct{}, 1)
		go in.work(i+1, in.start[i])
	}
	h := &Pool{in}
	runtime.SetFinalizer(h, func(h *Pool) { h.pool.close() })
	return h
}

func (p *pool) work(worker int, start <-chan struct{}) {
	for range start {
		if p.ctx != nil {
			pprof.SetGoroutineLabels(p.ctx)
		}
		if m := p.metrics; m != nil {
			t0 := time.Now()
			p.task.RunShard(p.phase, worker, p.workers)
			m.BusyNS.Add(worker, uint64(time.Since(t0)))
		} else {
			p.task.RunShard(p.phase, worker, p.workers)
		}
		p.wg.Done()
	}
}

// Workers returns the pool size, including the caller's slot 0.
func (p *pool) Workers() int { return p.workers }

// SetMetrics attaches (or, with nil, detaches) the pool's accounting.
// The metric vector must be sized for Workers slots. Not safe to call
// concurrently with Run.
func (p *pool) SetMetrics(m *obs.PoolMetrics) { p.metrics = m }

// Run executes one phase of t on every worker and returns when all shards
// have finished (a phase barrier). The caller runs shard 0 itself.
// Steady-state calls perform no allocations and create no goroutines.
func (p *pool) Run(t Task, phase int) { p.RunCtx(t, phase, nil) }

// RunCtx is Run with a pprof label context: every worker (including the
// caller's slot) carries ctx's labels while executing its shard, so CPU
// profiles split by stage. The caller's own labels are restored before
// returning; a nil ctx leaves labels untouched.
func (p *pool) RunCtx(t Task, phase int, ctx context.Context) {
	m := p.metrics
	if p.workers == 1 {
		if ctx != nil {
			pprof.SetGoroutineLabels(ctx)
		}
		if m != nil {
			t0 := time.Now()
			t.RunShard(phase, 0, 1)
			m.BusyNS.Add(0, uint64(time.Since(t0)))
			m.Runs.Inc()
		} else {
			t.RunShard(phase, 0, 1)
		}
		if ctx != nil {
			pprof.SetGoroutineLabels(context.Background())
		}
		return
	}
	p.task, p.phase, p.ctx = t, phase, ctx
	p.wg.Add(p.workers - 1)
	for _, ch := range p.start {
		ch <- struct{}{}
	}
	if ctx != nil {
		pprof.SetGoroutineLabels(ctx)
	}
	if m != nil {
		t0 := time.Now()
		t.RunShard(phase, 0, p.workers)
		done := time.Now()
		m.BusyNS.Add(0, uint64(done.Sub(t0)))
		p.wg.Wait()
		m.BarrierWaitNS.Add(uint64(time.Since(done)))
		m.Runs.Inc()
	} else {
		t.RunShard(phase, 0, p.workers)
		p.wg.Wait()
	}
	if ctx != nil {
		pprof.SetGoroutineLabels(context.Background())
	}
	p.task, p.ctx = nil, nil
}

// Close releases the worker goroutines. It is idempotent; the pool must
// not be Run afterwards.
func (p *Pool) Close() {
	runtime.SetFinalizer(p, nil)
	p.pool.close()
}

func (p *pool) close() {
	p.once.Do(func() {
		for _, ch := range p.start {
			close(ch)
		}
	})
}
