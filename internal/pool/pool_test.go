package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// sumTask adds worker indices into per-worker cells, tagged by phase.
type sumTask struct {
	cells [][8]uint64 // padded to avoid false sharing in the test itself
}

func (t *sumTask) RunShard(phase, worker, workers int) {
	t.cells[worker][0] += uint64(phase*workers + worker)
}

func TestRunCoversAllWorkers(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		p := New(n)
		task := &sumTask{cells: make([][8]uint64, n)}
		const phases = 50
		for ph := 0; ph < phases; ph++ {
			p.Run(task, ph)
		}
		for wk := 0; wk < n; wk++ {
			var want uint64
			for ph := 0; ph < phases; ph++ {
				want += uint64(ph*n + wk)
			}
			if task.cells[wk][0] != want {
				t.Fatalf("n=%d worker %d accumulated %d, want %d", n, wk, task.cells[wk][0], want)
			}
		}
		p.Close()
	}
}

func TestRunIsABarrier(t *testing.T) {
	p := New(4)
	defer p.Close()
	var inFlight, maxSeen atomic.Int64
	task := taskFunc(func(phase, worker, workers int) {
		cur := inFlight.Add(1)
		for {
			old := maxSeen.Load()
			if cur <= old || maxSeen.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
	})
	for ph := 0; ph < 10; ph++ {
		p.Run(task, ph)
		if got := inFlight.Load(); got != 0 {
			t.Fatalf("phase %d returned with %d shards in flight", ph, got)
		}
	}
	if maxSeen.Load() != 4 {
		t.Fatalf("peak concurrency %d, want 4", maxSeen.Load())
	}
}

type taskFunc func(phase, worker, workers int)

func (f taskFunc) RunShard(phase, worker, workers int) { f(phase, worker, workers) }

func TestRunAllocatesNothingAndSpawnsNothing(t *testing.T) {
	p := New(4)
	defer p.Close()
	task := &sumTask{cells: make([][8]uint64, 4)}
	p.Run(task, 0) // warm up
	before := runtime.NumGoroutine()
	allocs := testing.AllocsPerRun(100, func() { p.Run(task, 1) })
	if allocs != 0 {
		t.Errorf("Run allocated %.1f objects per call, want 0", allocs)
	}
	if after := runtime.NumGoroutine(); after != before {
		t.Errorf("goroutine count changed %d → %d across Runs", before, after)
	}
}

func TestCloseReleasesWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	p := New(6)
	task := &sumTask{cells: make([][8]uint64, 6)}
	p.Run(task, 0)
	p.Close()
	p.Close() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > base {
		t.Fatalf("%d goroutines alive after Close, started with %d", got, base)
	}
}

func TestZeroAndNegativeSize(t *testing.T) {
	for _, n := range []int{0, -3} {
		p := New(n)
		if p.Workers() != 1 {
			t.Fatalf("New(%d).Workers() = %d, want 1", n, p.Workers())
		}
		task := &sumTask{cells: make([][8]uint64, 1)}
		p.Run(task, 2)
		if task.cells[0][0] != 2 {
			t.Fatalf("inline run missing: %d", task.cells[0][0])
		}
		p.Close()
	}
}
