package shard

import (
	"context"
	"sync"
	"time"

	"flashmob/internal/core"
	"flashmob/internal/graph"
	"flashmob/internal/obs"
	"flashmob/internal/part"
	"flashmob/internal/walk"
)

// Topology runs sharded mixed walks with every shard in-process: one
// engine build shared by all shards (each shard only ever samples the
// partitions it owns, so sharing the immutable build costs nothing and
// keeps memory flat), per-shard sessions and steppers off the engine's
// pools, and a ChanMesh exchange. Safe for concurrent RunMixed calls —
// each run gets its own mesh and sessions — which is what lets the
// serving layer drive one Topology from many executors.
type Topology struct {
	eng    *core.Engine
	smap   *part.ShardMap
	m      *Metrics
	shards int
}

// New builds an in-process sharded topology over the engine's plan.
func New(eng *core.Engine, shards int) (*Topology, error) {
	smap, err := part.NewShardMap(eng.Plan(), shards)
	if err != nil {
		return nil, err
	}
	return &Topology{eng: eng, smap: smap, m: newMetrics(shards), shards: shards}, nil
}

// NumShards returns the shard count.
func (t *Topology) NumShards() int { return t.shards }

// Map returns the topology's two-level VID→(shard, VP) mapping.
func (t *Topology) Map() *part.ShardMap { return t.smap }

// Engine returns the shared engine build.
func (t *Topology) Engine() *core.Engine { return t.eng }

// MetricsReport snapshots the topology's shard metrics (emigrants,
// frames, supersteps), accumulated across every run so far.
func (t *Topology) MetricsReport() *obs.Report { return t.m.Report() }

// RunMixed executes the cohorts across the shards and returns the same
// result shape as core's RunMixed, histories always recorded (the
// trajectories are the product of a sharded run). Trajectories are
// bitwise-identical to Engine.RunMixed with the same cohorts, for any
// shard count.
func (t *Topology) RunMixed(ctx context.Context, cohorts []core.Cohort) (*core.MixedResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	p, err := place(t.eng, t.smap, cohorts)
	if err != nil {
		return nil, err
	}

	// Shared position matrices: pos[k][step*walkers+id]. Shards own
	// disjoint ids at every step, so the writes never race; the final
	// Wait orders them before assembly reads.
	pos := make([][]graph.VID, len(p.resolved))
	for k, c := range p.resolved {
		pos[k] = make([]graph.VID, int(c.Walkers)*(c.Steps+1))
		copy(pos[k][:c.Walkers], p.row0[k])
	}

	mesh := NewChanMesh(t.shards)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	vpSteps := make([][]uint64, t.shards)
	for s := 0; s < t.shards; s++ {
		r := &shardRun{
			self: s, eng: t.eng, smap: t.smap, tr: mesh.Bind(s), m: t.m,
			resolved: p.resolved, channels: p.channels,
			coh:     make([]*shardCohort, len(p.resolved)),
			vpSteps: make([]uint64, t.eng.Plan().NumVPs()),
		}
		vpSteps[s] = r.vpSteps
		for k, c := range p.resolved {
			r.coh[k] = newShardCohort(int(c.Walkers), core.AuxChannelsFor(&c.Spec), p.ids[s][k], p.w[s][k])
		}
		r.record = func(k, step int, ids []uint32, w []graph.VID) error {
			row := pos[k][step*int(p.resolved[k].Walkers):]
			for j, id := range ids {
				row[id] = w[j]
			}
			return nil
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := r.run(runCtx); err != nil {
				errOnce.Do(func() { firstErr = err })
				cancel()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	res, err := assemble(p, pos, t.eng.Plan().NumVPs(), start)
	if err != nil {
		return nil, err
	}
	for s := range vpSteps {
		for vp, n := range vpSteps[s] {
			res.VPSteps[vp] += n
		}
	}
	if t.m != nil {
		t.m.Runs.Inc()
	}
	return res, nil
}

// assemble folds the position matrices into a core.MixedResult with
// per-cohort histories, cohorts in caller order.
func assemble(p *placement, pos [][]graph.VID, nvp int, start time.Time) (*core.MixedResult, error) {
	res := &core.MixedResult{
		Cohorts: make([]core.CohortResult, len(p.resolved)),
		VPSteps: make([]uint64, nvp),
	}
	for k, c := range p.resolved {
		h := walk.NewHistory(int(c.Walkers))
		for step := 0; step <= c.Steps; step++ {
			lo := step * int(c.Walkers)
			if err := h.Append(pos[k][lo : lo+int(c.Walkers)]); err != nil {
				return nil, err
			}
		}
		res.Cohorts[k] = core.CohortResult{
			Walkers:    c.Walkers,
			Steps:      c.Steps,
			TotalSteps: c.Walkers * uint64(c.Steps),
			History:    h,
		}
		res.Walkers += c.Walkers
		res.TotalSteps += res.Cohorts[k].TotalSteps
	}
	res.Duration = time.Since(start)
	res.OtherTime = res.Duration
	return res, nil
}
