package shard

import (
	"context"
	"fmt"
	"math"

	"flashmob/internal/core"
	"flashmob/internal/graph"
	"flashmob/internal/part"
	"flashmob/internal/walk"
)

// shardCohort is one cohort's per-shard walker state. Three generations
// of each channel rotate through a superstep: cur (pre-step), next (the
// stepper's output scratch), and ex (the exchange's merged output, which
// becomes cur). All are full-capacity — sized for the cohort's whole
// walker population, the worst case of everyone walking into one shard —
// with n tracking the live prefix.
type shardCohort struct {
	n                   int
	ids, idsEx          []uint32
	w, wNext, wEx       []graph.VID
	aux, auxNext, auxEx [][]graph.VID
	views, viewsNext    [][]graph.VID // per-step channel views, reused
}

// newShardCohort sizes a cohort's buffers for total walkers and the
// spec's channel count, seeding the local set from (ids, w) — the
// id-ordered members whose start vertex this shard owns. Aux channels
// start as the walker's own start vertex, exactly as the engine
// initializes them.
func newShardCohort(total int, channels int, ids []uint32, w []graph.VID) *shardCohort {
	co := &shardCohort{
		n:         len(ids),
		ids:       make([]uint32, total),
		idsEx:     make([]uint32, total),
		w:         make([]graph.VID, total),
		wNext:     make([]graph.VID, total),
		wEx:       make([]graph.VID, total),
		views:     make([][]graph.VID, channels),
		viewsNext: make([][]graph.VID, channels),
	}
	copy(co.ids, ids)
	copy(co.w, w)
	for c := 0; c < channels; c++ {
		co.aux = append(co.aux, make([]graph.VID, total))
		co.auxNext = append(co.auxNext, make([]graph.VID, total))
		co.auxEx = append(co.auxEx, make([]graph.VID, total))
		copy(co.aux[c], w)
	}
	return co
}

// shardRun executes one shard's side of a sharded mixed run: the
// superstep loop every shard (in-process goroutine or TCP worker
// process) runs in lockstep.
type shardRun struct {
	self     int
	eng      *core.Engine
	smap     *part.ShardMap
	tr       Transport
	m        *Metrics
	resolved []core.Cohort
	channels int
	coh      []*shardCohort
	// record observes cohort k's local walkers after step `step`
	// (1-based; step 0 is the init row the placer already knows).
	// In-process shards write disjoint rows of shared position matrices;
	// TCP workers accumulate (step, id, v) fragments for the coordinator.
	record func(k, step int, ids []uint32, w []graph.VID) error
	// vpSteps receives the shard's per-partition walker-step counts.
	vpSteps []uint64
}

// run executes the superstep loop. Every shard iterates supersteps and
// cohorts in the same order, so the per-(superstep, cohort) exchange
// rounds pair up across the mesh; a cohort past its last step is skipped
// identically everywhere. The exchange is skipped after a cohort's final
// step — a walker crossing shards as it finishes is a finished walker,
// not a message (matching internal/dist's accounting).
func (r *shardRun) run(ctx context.Context) error {
	sess, err := r.eng.NewSession(ctx)
	if err != nil {
		return err
	}
	defer sess.Close()
	maxWalkers, maxSteps := 0, 0
	for _, c := range r.resolved {
		if int(c.Walkers) > maxWalkers {
			maxWalkers = int(c.Walkers)
		}
		if c.Steps > maxSteps {
			maxSteps = c.Steps
		}
	}
	st, err := sess.NewStepper(maxWalkers, r.channels, len(r.resolved))
	if err != nil {
		return err
	}
	for k := range r.resolved {
		if err := st.BindCohort(k, &r.resolved[k].Spec); err != nil {
			return err
		}
	}
	ex := NewExchange(r.self, r.smap, r.tr, r.m)

	for t := 0; t < maxSteps; t++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if r.m != nil {
			r.m.Supersteps.Inc()
		}
		for k := range r.resolved {
			c := &r.resolved[k]
			if t >= c.Steps {
				continue
			}
			co := r.coh[k]
			n := co.n
			channels := core.AuxChannelsFor(&c.Spec)
			views, viewsNext := co.views[:0], co.viewsNext[:0]
			for ch := 0; ch < channels; ch++ {
				views = append(views, co.aux[ch][:n])
				viewsNext = append(viewsNext, co.auxNext[ch][:n])
			}
			co.views, co.viewsNext = views, viewsNext
			if err := st.Step(k, c.Seed, t, co.w[:n], co.wNext[:n], views, viewsNext); err != nil {
				return err
			}
			if err := r.record(k, t+1, co.ids[:n], co.wNext[:n]); err != nil {
				return err
			}
			if t+1 >= c.Steps {
				continue // final step: walkers finish where they stand
			}
			b := walk.Batch{
				IDs: co.ids[:n], W: co.wNext[:n], Aux: viewsNext,
				OutIDs: co.idsEx[:0], Out: co.wEx[:0], OutAux: co.auxOutViews(channels),
			}
			if err := ex.Move(ctx, &b); err != nil {
				return err
			}
			co.n = len(b.Out)
			co.ids, co.idsEx = co.idsEx, co.ids
			co.w, co.wEx = co.wEx, co.w
			for ch := 0; ch < channels; ch++ {
				co.aux[ch], co.auxEx[ch] = co.auxEx[ch], co.aux[ch]
			}
		}
	}
	copy(r.vpSteps, st.VPSteps())
	return nil
}

// auxOutViews returns the exchange-output aux slices, zero-length with
// full capacity, one per channel.
func (co *shardCohort) auxOutViews(channels int) [][]graph.VID {
	if channels == 0 {
		return nil
	}
	views := make([][]graph.VID, channels)
	for c := 0; c < channels; c++ {
		views[c] = co.auxEx[c][:0]
	}
	return views
}

// placement is the deterministic global init of one run: per cohort, the
// full start-vertex array (row 0 of its history) and the id-ordered
// scatter of (id, vertex) onto owning shards.
type placement struct {
	resolved []core.Cohort
	channels int
	// row0[k] is cohort k's global start positions.
	row0 [][]graph.VID
	// ids[s][k] / w[s][k] are shard s's members of cohort k, ascending.
	ids [][][]uint32
	w   [][][]graph.VID
}

// place computes the single-engine init (core.InitWalkersSeeded — the
// same placement RunMixed draws) and scatters each cohort's walkers to
// the shard owning their start vertex. The ascending-id scan keeps every
// shard's local array the id-ordered subsequence of the global one.
func place(eng *core.Engine, smap *part.ShardMap, cohorts []core.Cohort) (*placement, error) {
	resolved, channels, err := eng.ResolveCohorts(cohorts)
	if err != nil {
		return nil, err
	}
	S := smap.NumShards()
	p := &placement{
		resolved: resolved,
		channels: channels,
		row0:     make([][]graph.VID, len(resolved)),
		ids:      make([][][]uint32, S),
		w:        make([][][]graph.VID, S),
	}
	for s := 0; s < S; s++ {
		p.ids[s] = make([][]uint32, len(resolved))
		p.w[s] = make([][]graph.VID, len(resolved))
	}
	for k, c := range resolved {
		if c.Walkers > math.MaxUint32 {
			return nil, fmt.Errorf("shard: cohort %d's %d walkers exceed the 32-bit id space", k, c.Walkers)
		}
		wAll := make([]graph.VID, c.Walkers)
		eng.InitWalkersSeeded(c.Seed, wAll)
		p.row0[k] = wAll
		for j, v := range wAll {
			s := smap.ShardOf(v)
			p.ids[s][k] = append(p.ids[s][k], uint32(j))
			p.w[s][k] = append(p.w[s][k], v)
		}
	}
	return p, nil
}
