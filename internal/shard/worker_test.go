package shard

import (
	"context"
	"net"
	"runtime"
	"testing"
	"time"

	"flashmob/internal/algo"
	"flashmob/internal/core"
	"flashmob/internal/graph"
	"flashmob/internal/obs"
)

// startWorkers boots S worker shards on loopback listeners, each with
// its own engine build (the multi-process arrangement, minus the
// processes), and returns the addresses plus a shutdown func.
func startWorkers(t *testing.T, g *graph.CSR, spec algo.Spec, S int) ([]string, context.CancelFunc, chan error) {
	t.Helper()
	lns := make([]net.Listener, S)
	addrs := make([]string, S)
	for i := 0; i < S; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, S)
	for i := 0; i < S; i++ {
		eng := testEngine(t, g, spec)
		go func(i int, eng *core.Engine) {
			defer eng.Close()
			errCh <- ServeWorker(ctx, lns[i], eng, i, addrs)
		}(i, eng)
	}
	return addrs, cancel, errCh
}

// TestRemoteBitwiseIdentical runs a mixed batch over a 2-worker TCP
// mesh and demands trajectories bitwise-identical to the single-engine
// run — the multi-process half of the tentpole claim — across two
// consecutive runs on the same mesh (frames of successive runs must not
// bleed into each other).
func TestRemoteBitwiseIdentical(t *testing.T) {
	g := testGraph(t, 600, 3)
	e := testEngine(t, g, algo.DeepWalk())
	defer e.Close()
	cohorts := []core.Cohort{
		{Spec: algo.DeepWalk(), Walkers: 300, Steps: 7, Seed: 21},
		{Spec: algo.Node2Vec(0.5, 2), Walkers: 150, Steps: 4, Seed: 22},
	}
	ref, err := e.RunMixed(cohorts)
	if err != nil {
		t.Fatal(err)
	}

	addrs, cancel, errCh := startWorkers(t, g, algo.DeepWalk(), 2)
	defer cancel()
	rt, err := NewRemote(e, addrs)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		res, err := rt.RunMixed(context.Background(), cohorts)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for k := range cohorts {
			historiesMatch(t, "remote", ref.Cohorts[k].History, res.Cohorts[k].History)
		}
		for vp := range ref.VPSteps {
			if ref.VPSteps[vp] != res.VPSteps[vp] {
				t.Fatalf("round %d: VPSteps[%d] = %d, single-engine %d", round, vp, res.VPSteps[vp], ref.VPSteps[vp])
			}
		}
	}

	// The coordinator's aggregate must balance and match the chan-mesh
	// topology's counts on the same run (same trajectories, same
	// crossings, whatever the transport).
	topo, err := New(e, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.RunMixed(context.Background(), cohorts); err != nil {
		t.Fatal(err)
	}
	chanEmi := vecTotal(t, topo.MetricsReport(), "shard_emigrants_total")
	tcpEmi := vecTotal(t, rt.MetricsReport(), "shard_emigrants_total") / 2 // two rounds
	if chanEmi != tcpEmi {
		t.Fatalf("emigrants: chan mesh %d, tcp mesh %d", chanEmi, tcpEmi)
	}

	cancel()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errCh:
			if err != context.Canceled {
				t.Fatalf("worker exit: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("worker did not drain after cancel")
		}
	}
}

func vecTotal(t *testing.T, rep *obs.Report, name string) uint64 {
	t.Helper()
	vs, ok := rep.Vector(name)
	if !ok {
		t.Fatalf("metric %q missing", name)
	}
	var sum uint64
	for _, v := range vs.Values {
		sum += v
	}
	return sum
}

// TestRemoteRejectsCustomSpec pins the wire rule: function-valued
// transitions cannot cross a process boundary.
func TestRemoteRejectsCustomSpec(t *testing.T) {
	g := testGraph(t, 300, 1)
	e := testEngine(t, g, algo.DeepWalk())
	defer e.Close()
	rt, err := NewRemote(e, []string{"127.0.0.1:1", "127.0.0.1:2"})
	if err != nil {
		t.Fatal(err)
	}
	spec := algo.DeepWalk()
	spec.Order = 2
	spec.Custom = &algo.Transition{Weight: func(g *graph.CSR, s, u, x graph.VID) float64 { return 1 }, MaxWeight: 1}
	if _, err := rt.RunMixed(context.Background(), []core.Cohort{{Spec: spec, Walkers: 10, Steps: 2, Seed: 1}}); err == nil {
		t.Fatal("custom spec crossed the wire")
	}
}

// TestWorkerCancellationDrains cancels the workers mid-run and demands
// every goroutine drains — the TCP half of the transport-drain
// guarantee (the chan half lives in topology_test.go).
func TestWorkerCancellationDrains(t *testing.T) {
	g := testGraph(t, 500, 5)
	e := testEngine(t, g, algo.DeepWalk())
	defer e.Close()

	before := runtime.NumGoroutine()
	addrs, cancel, errCh := startWorkers(t, g, algo.DeepWalk(), 2)
	rt, err := NewRemote(e, addrs)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() {
		_, err := rt.RunMixed(context.Background(), []core.Cohort{
			{Spec: algo.DeepWalk(), Walkers: 3000, Steps: 5000, Seed: 9}})
		runDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the run get into its supersteps
	cancel()
	select {
	case err := <-runDone:
		if err == nil {
			t.Fatal("canceled run returned nil error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not abort after worker cancel")
	}
	for i := 0; i < 2; i++ {
		select {
		case <-errCh:
		case <-time.After(5 * time.Second):
			t.Fatal("worker did not exit after cancel")
		}
	}
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, after)
	}
}
