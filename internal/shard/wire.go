package shard

import (
	"encoding/binary"
	"fmt"
	"io"

	"flashmob/internal/graph"
)

// Wire framing shared by the TCP exchange transport and the
// coordinator↔worker run protocol (docs/SERVING.md, "Sharded serving").
// Every frame is [1-byte type][4-byte little-endian payload length]
// [payload]; numeric payloads are little-endian uint32 words.
const (
	// frameHello opens a peer mesh connection: payload is one word, the
	// dialing shard's index.
	frameHello = byte(0x01)
	// frameWalkers carries one exchange round's records to a peer:
	// payload is records × (2+channels) words, [id, vertex, aux...] each.
	// Empty payloads are the barrier.
	frameWalkers = byte(0x02)
	// frameRun opens a run on a worker: payload is the JSON runHeader.
	frameRun = byte(0x10)
	// frameInit scatters one cohort's local walkers to a worker: payload
	// is [cohort, (id, vertex)...] words. May repeat per cohort.
	frameInit = byte(0x11)
	// frameGo marks the end of init frames; the worker starts stepping.
	frameGo = byte(0x12)
	// framePaths streams recorded positions back to the coordinator:
	// payload is [cohort, (step, id, vertex)...] words.
	framePaths = byte(0x20)
	// frameDone ends a worker's run: payload is the JSON doneTrailer.
	frameDone = byte(0x21)
	// frameErr aborts a run: payload is UTF-8 error text.
	frameErr = byte(0x22)
)

// maxFramePayload caps a frame's payload bytes: a defense against
// corrupt length prefixes, and the chunking granularity for init and
// path streams.
const maxFramePayload = 1 << 24

// writeFrame writes one frame.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame, rejecting payloads past maxFramePayload.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("shard: frame of %d bytes exceeds the %d cap", n, maxFramePayload)
	}
	if n == 0 {
		return hdr[0], nil, nil
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// vidsToBytes encodes words little-endian.
func vidsToBytes(vs []graph.VID) []byte {
	b := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	return b
}

// bytesToVIDs decodes a little-endian word payload.
func bytesToVIDs(b []byte) ([]graph.VID, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("shard: %d-byte payload is not a word multiple", len(b))
	}
	vs := make([]graph.VID, len(b)/4)
	for i := range vs {
		vs[i] = graph.VID(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return vs, nil
}
