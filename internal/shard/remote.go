package shard

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"flashmob/internal/core"
	"flashmob/internal/graph"
	"flashmob/internal/obs"
	"flashmob/internal/part"
)

// initChunkWords caps one frameInit payload: (id, vertex) pairs of
// words, well under maxFramePayload.
const initChunkWords = 2 * (1 << 16)

// Remote is the coordinator side of a multi-process topology: shard i
// lives in the worker process at addrs[i] (ServeWorker), and RunMixed
// scatters resolved cohorts, init placements, and a GO to every worker,
// then gathers path fragments and counter trailers. The coordinator
// builds the same engine as the workers — it needs the plan for the
// shard map and the seeded init placement — but never steps walkers
// itself.
//
// Runs serialize on an internal mutex: successive runs share the
// workers' exchange mesh, whose only ordering guarantee is per-pair
// FIFO.
type Remote struct {
	eng   *core.Engine
	smap  *part.ShardMap
	addrs []string
	m     *Metrics
	mu    sync.Mutex
}

// NewRemote builds a coordinator over len(addrs) worker shards.
func NewRemote(eng *core.Engine, addrs []string) (*Remote, error) {
	smap, err := part.NewShardMap(eng.Plan(), len(addrs))
	if err != nil {
		return nil, err
	}
	return &Remote{eng: eng, smap: smap, addrs: addrs, m: newMetrics(len(addrs))}, nil
}

// NumShards returns the worker count.
func (r *Remote) NumShards() int { return len(r.addrs) }

// Map returns the coordinator's two-level VID→(shard, VP) mapping.
func (r *Remote) Map() *part.ShardMap { return r.smap }

// MetricsReport snapshots the coordinator's aggregate of the workers'
// per-run counter trailers.
func (r *Remote) MetricsReport() *obs.Report { return r.m.Report() }

// RunMixed executes the cohorts across the worker shards; trajectories
// are bitwise-identical to the in-process Topology and to the
// single-engine RunMixed. Specs with Custom or History transitions are
// rejected — function values cannot cross the wire.
func (r *Remote) RunMixed(ctx context.Context, cohorts []core.Cohort) (*core.MixedResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for i := range cohorts {
		if cohorts[i].Spec.Custom != nil || cohorts[i].Spec.History != nil {
			return nil, fmt.Errorf("shard: cohort %d: Custom/History transitions cannot run on remote shards", i)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	start := time.Now()
	p, err := place(r.eng, r.smap, cohorts)
	if err != nil {
		return nil, err
	}

	pos := make([][]graph.VID, len(p.resolved))
	for k, c := range p.resolved {
		pos[k] = make([]graph.VID, int(c.Walkers)*(c.Steps+1))
		copy(pos[k][:c.Walkers], p.row0[k])
	}

	hdr := runHeader{Cohorts: make([]wireCohort, len(p.resolved))}
	for k, c := range p.resolved {
		hdr.Cohorts[k] = wireCohort{Walkers: c.Walkers, Steps: c.Steps, Seed: c.Seed, Spec: toWireSpec(&c.Spec)}
	}
	hdrJSON, err := json.Marshal(hdr)
	if err != nil {
		return nil, err
	}

	S := len(r.addrs)
	conns := make([]net.Conn, S)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	d := net.Dialer{}
	for s := 0; s < S; s++ {
		conn, err := d.DialContext(ctx, "tcp", r.addrs[s])
		if err != nil {
			return nil, fmt.Errorf("shard: dialing worker %d at %s: %w", s, r.addrs[s], err)
		}
		conns[s] = conn
		bw := bufio.NewWriter(conn)
		if err := writeFrame(bw, frameRun, hdrJSON); err != nil {
			return nil, err
		}
		scratch := make([]graph.VID, 0, initChunkWords+1)
		for k := range p.resolved {
			ids, ws := p.ids[s][k], p.w[s][k]
			for off := 0; off < len(ids); off += initChunkWords / 2 {
				end := off + initChunkWords/2
				if end > len(ids) {
					end = len(ids)
				}
				scratch = append(scratch[:0], graph.VID(k))
				for i := off; i < end; i++ {
					scratch = append(scratch, graph.VID(ids[i]), ws[i])
				}
				if err := writeFrame(bw, frameInit, vidsToBytes(scratch)); err != nil {
					return nil, err
				}
			}
		}
		if err := writeFrame(bw, frameGo, nil); err != nil {
			return nil, err
		}
		if err := bw.Flush(); err != nil {
			return nil, err
		}
	}

	// Gather concurrently: each worker streams path fragments, then a
	// DONE trailer (or an ERR). Workers write disjoint walker ids at
	// every step, so the shared matrices never race.
	stop := context.AfterFunc(ctx, func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	})
	defer stop()
	errs := make([]error, S)
	trailers := make([]doneTrailer, S)
	var wg sync.WaitGroup
	for s := 0; s < S; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = r.gather(conns[s], p, pos, &trailers[s])
			if errs[s] != nil && ctx.Err() != nil {
				errs[s] = ctx.Err()
			}
		}(s)
	}
	wg.Wait()
	for s := 0; s < S; s++ {
		if errs[s] != nil {
			return nil, fmt.Errorf("shard: worker %d: %w", s, errs[s])
		}
	}

	res, err := assemble(p, pos, r.eng.Plan().NumVPs(), start)
	if err != nil {
		return nil, err
	}
	for s := 0; s < S; s++ {
		t := &trailers[s]
		for vp, n := range t.VPSteps {
			if vp < len(res.VPSteps) {
				res.VPSteps[vp] += n
			}
		}
		r.m.Emigrants.Add(s, t.Emigrants)
		r.m.Immigrants.Add(s, t.Immigrants)
		r.m.Frames.Add(s, t.Frames)
		r.m.FrameWords.Add(s, t.FrameWords)
	}
	r.m.Runs.Inc()
	return res, nil
}

// gather drains one worker's response stream into the position
// matrices.
func (r *Remote) gather(conn net.Conn, p *placement, pos [][]graph.VID, trailer *doneTrailer) error {
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			return err
		}
		switch typ {
		case framePaths:
			vs, err := bytesToVIDs(payload)
			if err != nil || len(vs) < 1 || len(vs[1:])%3 != 0 {
				return fmt.Errorf("shard: malformed paths frame")
			}
			k := int(vs[0])
			if k < 0 || k >= len(p.resolved) {
				return fmt.Errorf("shard: paths frame for cohort %d of %d", k, len(p.resolved))
			}
			walkers := int(p.resolved[k].Walkers)
			steps := p.resolved[k].Steps
			for i := 1; i+3 <= len(vs); i += 3 {
				step, id, v := int(vs[i]), int(vs[i+1]), vs[i+2]
				if step < 1 || step > steps || id < 0 || id >= walkers {
					return fmt.Errorf("shard: paths frame out of range (step %d, id %d)", step, id)
				}
				pos[k][step*walkers+id] = v
			}
		case frameDone:
			return json.Unmarshal(payload, trailer)
		case frameErr:
			return errors.New(string(payload))
		default:
			return fmt.Errorf("shard: unexpected frame 0x%02x from worker", typ)
		}
	}
}
