// Package shard runs the sample→shuffle pipeline across multiple engine
// shards: internal/part's ShardMap cuts the (degree-sorted) vertex space
// into contiguous partition runs, each shard advances its local walkers
// one step at a time through core.Stepper, and a cross-shard Exchange —
// the walk.Exchange seam — write-combines emigrant walkers per
// destination shard and delivers them in bulk over channels (in-process
// shards) or length-prefixed TCP frames (one shard per process).
//
// Supersteps alternate local-walk / exchange in BSP lockstep, and every
// sample draw keys on the cohort's own (seed, step, partition, sub-shard)
// schedule — global coordinates a shard can compute locally — so sharded
// trajectories are bitwise-identical to the single-engine run regardless
// of shard count or transport. See DESIGN.md, "Sharded topology".
package shard

import (
	"strconv"

	"flashmob/internal/obs"
)

// Metrics is the sharded topology's observability set, indexed by shard.
// The emigrant counters are the executable counterpart of the
// internal/sim cross-domain traffic model and are asserted against
// internal/dist's message counts on shared topologies (see dist's
// parity test).
type Metrics struct {
	reg *obs.Registry
	// Emigrants counts walker records each shard sent to peers.
	Emigrants *obs.CounterVec
	// Immigrants counts walker records each shard received from peers.
	Immigrants *obs.CounterVec
	// Frames counts exchange frames each shard sent (including the empty
	// barrier frames every peer pair trades once per exchange round).
	Frames *obs.CounterVec
	// FrameWords counts the 4-byte words of frame payload each shard sent.
	FrameWords *obs.CounterVec
	// Supersteps counts superstep iterations summed over shards.
	Supersteps *obs.Counter
	// Runs counts completed sharded runs.
	Runs *obs.Counter
}

// newMetrics builds the topology's registry for the given shard count.
func newMetrics(shards int) *Metrics {
	labels := make([]string, shards)
	for i := range labels {
		labels[i] = "shard" + strconv.Itoa(i)
	}
	reg := obs.NewRegistry()
	return &Metrics{
		reg: reg,
		Emigrants: reg.CounterVec(obs.Desc{
			Name: "shard_emigrants_total", Unit: "walkers", Stage: "shard",
			Help: "walker records sent to peer shards, by sending shard"}, shards, labels),
		Immigrants: reg.CounterVec(obs.Desc{
			Name: "shard_immigrants_total", Unit: "walkers", Stage: "shard",
			Help: "walker records received from peer shards, by receiving shard"}, shards, labels),
		Frames: reg.CounterVec(obs.Desc{
			Name: "shard_exchange_frames_total", Unit: "count", Stage: "shard",
			Help: "exchange frames sent (empty barrier frames included), by sending shard"}, shards, labels),
		FrameWords: reg.CounterVec(obs.Desc{
			Name: "shard_exchange_frame_words_total", Unit: "count", Stage: "shard",
			Help: "4-byte payload words of exchange frames sent, by sending shard"}, shards, labels),
		Supersteps: reg.Counter(obs.Desc{
			Name: "shard_supersteps_total", Unit: "count", Stage: "shard",
			Help: "superstep iterations executed, summed over shards"}),
		Runs: reg.Counter(obs.Desc{
			Name: "shard_runs_total", Unit: "count", Stage: "shard",
			Help: "completed sharded mixed runs"}),
	}
}

// Report snapshots the topology's metrics.
func (m *Metrics) Report() *obs.Report { return m.reg.Snapshot() }
