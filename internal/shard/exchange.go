package shard

import (
	"context"
	"fmt"
	"math"

	"flashmob/internal/graph"
	"flashmob/internal/part"
	"flashmob/internal/walk"
)

// Exchange is the cross-shard walk.Exchange: records route to the shard
// owning their new vertex. Emigrants stage through the same
// write-combining LineStage geometry as the in-process shuffle — one
// line of whole records per destination shard, flushed to that peer's
// outbox as it fills — and ship as one bulk frame per peer per round.
// A record on the wire is words=2+channels VIDs: [walker id, vertex,
// aux...], the aux channels riding with the walker exactly as they ride
// through the shuffle.
//
// Move is one BSP exchange round: stage+send to every peer (empty frames
// included — they are the barrier), then receive from every peer and
// merge survivors with immigrants, ascending by walker id. The ascending
// order is what keeps sharded runs bitwise-identical: each shard's local
// walker array is always the id-ordered subsequence of the global
// array, so every partition chunk it feeds the sampler matches the
// single-engine chunk.
type Exchange struct {
	self  int
	smap  *part.ShardMap
	tr    Transport
	m     *Metrics
	words int
	stage walk.LineStage[graph.VID]
	// outbox ping-pongs two generations of per-peer frames: a frame's
	// backing is reused two rounds after it was sent, by which time BSP
	// lockstep guarantees the receiver consumed it (it cannot have
	// advanced a round without it).
	outbox [2][][]graph.VID
	parity int
	// Survivor compaction scratch (records staying local this round).
	survIDs []uint32
	survW   []graph.VID
	survAux [][]graph.VID
	// in[s] is the frame received from peer s this round; offs[s] the
	// merge cursor into it.
	in   [][]graph.VID
	offs []int
}

// NewExchange builds shard self's exchange over the given transport.
func NewExchange(self int, smap *part.ShardMap, tr Transport, m *Metrics) *Exchange {
	ex := &Exchange{self: self, smap: smap, tr: tr, m: m, words: -1,
		in: make([][]graph.VID, smap.NumShards())}
	ex.outbox[0] = make([][]graph.VID, smap.NumShards())
	ex.outbox[1] = make([][]graph.VID, smap.NumShards())
	return ex
}

// NumDests returns the shard count.
func (ex *Exchange) NumDests() int { return ex.smap.NumShards() }

// Compile-time check: the cross-shard exchange implements walk.Exchange.
var _ walk.Exchange = (*Exchange)(nil)

// Move implements walk.Exchange for one exchange round. b.IDs/b.W/b.Aux
// hold the shard's post-step local records, ascending by id; on return
// b.OutIDs/b.Out/b.OutAux (re-sliced to the new local count) hold the
// post-exchange set — survivors plus immigrants, ascending by id. The
// Out slices must have capacity for the cohort's whole walker
// population (the worst case: everyone walks into one shard).
func (ex *Exchange) Move(ctx context.Context, b *walk.Batch) error {
	S := ex.smap.NumShards()
	channels := len(b.Aux)
	words := 2 + channels
	if words != ex.words {
		ex.stage.Resize(S, words)
		ex.words = words
		for len(ex.survAux) < channels {
			ex.survAux = append(ex.survAux, nil)
		}
		ex.survAux = ex.survAux[:channels]
	}
	out := ex.outbox[ex.parity]
	ex.parity ^= 1
	for d := range out {
		out[d] = out[d][:0]
	}
	ex.survIDs = ex.survIDs[:0]
	ex.survW = ex.survW[:0]
	for c := range ex.survAux {
		ex.survAux[c] = ex.survAux[c][:0]
	}

	// Route: survivors compact in order; emigrants stage through the
	// write-combining lines and flush whole lines into the peer outbox.
	buf, fill, stride := ex.stage.Buf, ex.stage.Fill, ex.stage.Stride
	for j, v := range b.W {
		d := ex.smap.ShardOf(v)
		if d == ex.self {
			ex.survIDs = append(ex.survIDs, b.IDs[j])
			ex.survW = append(ex.survW, v)
			for c := range b.Aux {
				ex.survAux[c] = append(ex.survAux[c], b.Aux[c][j])
			}
			continue
		}
		base := d*stride + int(fill[d])*words
		buf[base] = graph.VID(b.IDs[j])
		buf[base+1] = v
		for c := 0; c < channels; c++ {
			buf[base+2+c] = b.Aux[c][j]
		}
		if fill[d]++; int(fill[d]) == walk.WCEntries {
			out[d] = append(out[d], buf[d*stride:d*stride+walk.WCEntries*words]...)
			fill[d] = 0
		}
	}
	for d := 0; d < S; d++ {
		if f := int(fill[d]); f > 0 {
			out[d] = append(out[d], buf[d*stride:d*stride+f*words]...)
			fill[d] = 0
		}
	}

	// Send to every peer in fixed order — empty frames are the barrier.
	for d := 0; d < S; d++ {
		if d == ex.self {
			continue
		}
		if err := ex.tr.Send(ctx, d, out[d]); err != nil {
			return err
		}
		if m := ex.m; m != nil {
			m.Emigrants.Add(ex.self, uint64(len(out[d])/words))
			m.Frames.Add(ex.self, 1)
			m.FrameWords.Add(ex.self, uint64(len(out[d])))
		}
	}

	// Receive one frame from every peer, fixed order.
	newN := len(ex.survW)
	for s := 0; s < S; s++ {
		if s == ex.self {
			ex.in[s] = nil
			continue
		}
		f, err := ex.tr.Recv(ctx, s)
		if err != nil {
			return err
		}
		if len(f)%words != 0 {
			return fmt.Errorf("shard: frame from shard %d is %d words, not a multiple of %d", s, len(f), words)
		}
		ex.in[s] = f
		newN += len(f) / words
		if m := ex.m; m != nil {
			m.Immigrants.Add(ex.self, uint64(len(f)/words))
		}
	}

	if cap(b.Out) < newN || cap(b.OutIDs) < newN {
		return fmt.Errorf("shard: exchange output capacity %d/%d short of %d records", cap(b.OutIDs), cap(b.Out), newN)
	}
	b.OutIDs = b.OutIDs[:newN]
	b.Out = b.Out[:newN]
	for c := range b.OutAux {
		if cap(b.OutAux[c]) < newN {
			return fmt.Errorf("shard: exchange aux output capacity %d short of %d records", cap(b.OutAux[c]), newN)
		}
		b.OutAux[c] = b.OutAux[c][:newN]
	}

	// S-way merge ascending by id: survivors and each peer frame are
	// already id-sorted (every shard scans its id-ordered array), and ids
	// are globally unique, so a linear min-pick reconstructs the global
	// subsequence order.
	si := 0
	offs := ex.inOffsets()
	for i := 0; i < newN; i++ {
		best := -1 // -1 = survivors, else peer index
		bestID := uint32(math.MaxUint32)
		haveBest := false
		if si < len(ex.survIDs) {
			bestID = ex.survIDs[si]
			haveBest = true
		}
		for s := 0; s < S; s++ {
			f := ex.in[s]
			if offs[s] >= len(f) {
				continue
			}
			if id := uint32(f[offs[s]]); !haveBest || id < bestID {
				best, bestID, haveBest = s, id, true
			}
		}
		if best < 0 {
			b.OutIDs[i] = ex.survIDs[si]
			b.Out[i] = ex.survW[si]
			for c := range b.OutAux {
				b.OutAux[c][i] = ex.survAux[c][si]
			}
			si++
			continue
		}
		f := ex.in[best]
		o := offs[best]
		b.OutIDs[i] = uint32(f[o])
		b.Out[i] = f[o+1]
		for c := range b.OutAux {
			b.OutAux[c][i] = f[o+2+c]
		}
		offs[best] = o + words
	}
	return nil
}

// inOffsets returns the zeroed per-peer merge cursor array.
func (ex *Exchange) inOffsets() []int {
	if ex.offs == nil || len(ex.offs) != len(ex.in) {
		ex.offs = make([]int, len(ex.in))
	} else {
		clear(ex.offs)
	}
	return ex.offs
}
