package shard

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"flashmob/internal/graph"
)

// tcpMsg is one received exchange frame (or the reader's terminal error).
type tcpMsg struct {
	f   []graph.VID
	err error
}

// tcpPeer is one mesh connection: a locked buffered writer for sends and
// a reader goroutine pumping walker frames into in.
type tcpPeer struct {
	conn net.Conn
	wmu  sync.Mutex
	bw   *bufio.Writer
	in   chan tcpMsg
}

// TCPTransport is the multi-process exchange transport: one established
// connection per peer shard, length-prefixed frames (wire.go), a reader
// goroutine per peer. The BSP lockstep bounds frames in flight, so the
// small per-peer inbox never grows with run size.
type TCPTransport struct {
	self  int
	peers []*tcpPeer
	done  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once
}

// NewTCPTransport wraps established mesh connections: conns[i] connects
// to shard i (nil at self). Takes ownership of the conns.
func NewTCPTransport(self int, conns []net.Conn) *TCPTransport {
	t := &TCPTransport{self: self, peers: make([]*tcpPeer, len(conns)), done: make(chan struct{})}
	for i, c := range conns {
		if c == nil {
			continue
		}
		p := &tcpPeer{conn: c, bw: bufio.NewWriter(c), in: make(chan tcpMsg, chanMeshCap*2)}
		t.peers[i] = p
		t.wg.Add(1)
		go t.read(p)
	}
	return t
}

// read pumps one peer's walker frames until the connection or the
// transport closes.
func (t *TCPTransport) read(p *tcpPeer) {
	defer t.wg.Done()
	for {
		typ, payload, err := readFrame(p.conn)
		var msg tcpMsg
		switch {
		case err != nil:
			msg.err = err
		case typ != frameWalkers:
			msg.err = fmt.Errorf("shard: unexpected frame 0x%02x on exchange connection", typ)
		default:
			msg.f, msg.err = bytesToVIDs(payload)
		}
		select {
		case p.in <- msg:
		case <-t.done:
			return
		}
		if msg.err != nil {
			return
		}
	}
}

// Send implements Transport.
func (t *TCPTransport) Send(_ context.Context, dest int, frame []graph.VID) error {
	p := t.peers[dest]
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if err := writeFrame(p.bw, frameWalkers, vidsToBytes(frame)); err != nil {
		return err
	}
	return p.bw.Flush()
}

// Recv implements Transport.
func (t *TCPTransport) Recv(ctx context.Context, src int) ([]graph.VID, error) {
	select {
	case msg := <-t.peers[src].in:
		return msg.f, msg.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-t.done:
		return nil, fmt.Errorf("shard: transport closed")
	}
}

// Close tears the mesh down: connections close (unblocking readers and
// any peer mid-Recv on the other side) and the readers drain.
func (t *TCPTransport) Close() error {
	t.once.Do(func() {
		close(t.done)
		for _, p := range t.peers {
			if p != nil {
				p.conn.Close()
			}
		}
	})
	t.wg.Wait()
	return nil
}

// dialPeer dials addr with retry until ctx cancels (workers boot in any
// order) and opens the connection with a hello frame naming self.
func dialPeer(ctx context.Context, addr string, self int) (net.Conn, error) {
	d := net.Dialer{}
	for {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			if werr := writeFrame(conn, frameHello, vidsToBytes([]graph.VID{graph.VID(self)})); werr != nil {
				conn.Close()
				return nil, werr
			}
			return conn, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}
