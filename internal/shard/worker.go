package shard

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"

	"flashmob/internal/algo"
	"flashmob/internal/core"
	"flashmob/internal/graph"
	"flashmob/internal/part"
)

// wireSpec is the JSON shape of a walk spec on the run protocol. Custom
// and History transitions carry function values, so they cannot cross a
// process boundary; the coordinator rejects them up front.
type wireSpec struct {
	Name     string  `json:"name"`
	Order    int     `json:"order"`
	Steps    int     `json:"steps"`
	P        float64 `json:"p,omitempty"`
	Q        float64 `json:"q,omitempty"`
	Weighted bool    `json:"weighted,omitempty"`
	StopProb float64 `json:"stop_prob,omitempty"`
}

func toWireSpec(sp *algo.Spec) wireSpec {
	return wireSpec{Name: sp.Name, Order: sp.Order, Steps: sp.Steps,
		P: sp.P, Q: sp.Q, Weighted: sp.Weighted, StopProb: sp.StopProb}
}

func (ws wireSpec) spec() algo.Spec {
	return algo.Spec{Name: ws.Name, Order: ws.Order, Steps: ws.Steps,
		P: ws.P, Q: ws.Q, Weighted: ws.Weighted, StopProb: ws.StopProb}
}

// runHeader opens one run on a worker: the resolved cohorts (defaults
// already applied by the coordinator, so every worker steps the same
// schedule without consulting its own defaults).
type runHeader struct {
	Cohorts []wireCohort `json:"cohorts"`
}

type wireCohort struct {
	Walkers uint64   `json:"walkers"`
	Steps   int      `json:"steps"`
	Seed    uint64   `json:"seed"`
	Spec    wireSpec `json:"spec"`
}

// doneTrailer closes a worker's run: the shard's exchange-counter deltas
// for this run and its per-partition walker-step counts.
type doneTrailer struct {
	Emigrants  uint64   `json:"emigrants"`
	Immigrants uint64   `json:"immigrants"`
	Frames     uint64   `json:"frames"`
	FrameWords uint64   `json:"frame_words"`
	VPSteps    []uint64 `json:"vp_steps"`
}

// pathChunkWords caps one framePaths payload: triples of words, well
// under maxFramePayload.
const pathChunkWords = 3 * (1 << 16)

type coordConn struct {
	conn   net.Conn
	header []byte
}

// ServeWorker hosts shard self of a len(addrs)-shard topology: it
// establishes the exchange mesh with its peers (dialing lower indices,
// accepting hellos from higher ones), then serves coordinator runs off
// ln one at a time until ctx ends. The engine must be built identically
// on every worker and the coordinator — same graph, same config — since
// the shard map and the seed schedule derive from the plan. Returns
// ctx.Err() on a clean drain.
func ServeWorker(ctx context.Context, ln net.Listener, eng *core.Engine, self int, addrs []string) error {
	S := len(addrs)
	if self < 0 || self >= S {
		return fmt.Errorf("shard: worker index %d out of range [0, %d)", self, S)
	}
	smap, err := part.NewShardMap(eng.Plan(), S)
	if err != nil {
		return err
	}
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()

	type peerConn struct {
		idx  int
		conn net.Conn
	}
	peerCh := make(chan peerConn, S)
	coordCh := make(chan coordConn)
	acceptErr := make(chan error, 1)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			go func(conn net.Conn) {
				typ, payload, err := readFrame(conn)
				if err != nil {
					conn.Close()
					return
				}
				switch typ {
				case frameHello:
					vs, err := bytesToVIDs(payload)
					if err != nil || len(vs) != 1 {
						conn.Close()
						return
					}
					peerCh <- peerConn{idx: int(vs[0]), conn: conn}
				case frameRun:
					select {
					case coordCh <- coordConn{conn: conn, header: payload}:
					case <-ctx.Done():
						conn.Close()
					}
				default:
					conn.Close()
				}
			}(conn)
		}
	}()

	type dialRes struct {
		j    int
		conn net.Conn
		err  error
	}
	dialed := make(chan dialRes, self)
	for j := 0; j < self; j++ {
		go func(j int) {
			c, err := dialPeer(ctx, addrs[j], self)
			dialed <- dialRes{j: j, conn: c, err: err}
		}(j)
	}
	conns := make([]net.Conn, S)
	for need := S - 1; need > 0; {
		select {
		case p := <-peerCh:
			if p.idx <= self || p.idx >= S || conns[p.idx] != nil {
				p.conn.Close()
				continue
			}
			conns[p.idx] = p.conn
			need--
		case d := <-dialed:
			if d.err != nil {
				return d.err
			}
			conns[d.j] = d.conn
			need--
		case err := <-acceptErr:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	tr := NewTCPTransport(self, conns)
	defer tr.Close()
	m := newMetrics(S)

	for {
		select {
		case cc := <-coordCh:
			// Per-run failures are reported on the coordinator connection;
			// the worker stays up for the next run.
			serveRun(ctx, cc, eng, smap, tr, m, self)
			cc.conn.Close()
		case err := <-acceptErr:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// serveRun executes one coordinator run on the worker's shard.
func serveRun(ctx context.Context, cc coordConn, eng *core.Engine, smap *part.ShardMap, tr Transport, m *Metrics, self int) {
	fail := func(err error) {
		_ = writeFrame(cc.conn, frameErr, []byte(err.Error()))
	}
	var hdr runHeader
	if err := json.Unmarshal(cc.header, &hdr); err != nil {
		fail(fmt.Errorf("shard: bad run header: %w", err))
		return
	}
	if len(hdr.Cohorts) == 0 {
		fail(fmt.Errorf("shard: run header has no cohorts"))
		return
	}
	resolved := make([]core.Cohort, len(hdr.Cohorts))
	channels := 0
	for i, wc := range hdr.Cohorts {
		resolved[i] = core.Cohort{Spec: wc.Spec.spec(), Walkers: wc.Walkers, Steps: wc.Steps, Seed: wc.Seed}
		if ch := core.AuxChannelsFor(&resolved[i].Spec); ch > channels {
			channels = ch
		}
	}

	// Collect init frames until GO.
	ids := make([][]uint32, len(resolved))
	ws := make([][]graph.VID, len(resolved))
	for {
		typ, payload, err := readFrame(cc.conn)
		if err != nil {
			return // coordinator gone; nothing to report to
		}
		if typ == frameGo {
			break
		}
		if typ != frameInit {
			fail(fmt.Errorf("shard: unexpected frame 0x%02x during init", typ))
			return
		}
		vs, err := bytesToVIDs(payload)
		if err != nil || len(vs) < 1 || len(vs[1:])%2 != 0 {
			fail(fmt.Errorf("shard: malformed init frame"))
			return
		}
		k := int(vs[0])
		if k < 0 || k >= len(resolved) {
			fail(fmt.Errorf("shard: init frame for cohort %d of %d", k, len(resolved)))
			return
		}
		for i := 1; i < len(vs); i += 2 {
			ids[k] = append(ids[k], uint32(vs[i]))
			ws[k] = append(ws[k], vs[i+1])
		}
	}

	frags := make([][]graph.VID, len(resolved))
	r := &shardRun{
		self: self, eng: eng, smap: smap, tr: tr, m: m,
		resolved: resolved, channels: channels,
		coh:     make([]*shardCohort, len(resolved)),
		vpSteps: make([]uint64, eng.Plan().NumVPs()),
		record: func(k, step int, ids []uint32, w []graph.VID) error {
			f := frags[k]
			for j, id := range ids {
				f = append(f, graph.VID(step), graph.VID(id), w[j])
			}
			frags[k] = f
			return nil
		},
	}
	for k, c := range resolved {
		r.coh[k] = newShardCohort(int(c.Walkers), core.AuxChannelsFor(&c.Spec), ids[k], ws[k])
	}
	before := doneTrailer{
		Emigrants: m.Emigrants.Value(self), Immigrants: m.Immigrants.Value(self),
		Frames: m.Frames.Value(self), FrameWords: m.FrameWords.Value(self),
	}
	if err := r.run(ctx); err != nil {
		fail(err)
		return
	}

	bw := bufio.NewWriter(cc.conn)
	scratch := make([]graph.VID, 0, pathChunkWords+1)
	for k := range frags {
		for off := 0; off < len(frags[k]); off += pathChunkWords {
			end := off + pathChunkWords
			if end > len(frags[k]) {
				end = len(frags[k])
			}
			scratch = append(scratch[:0], graph.VID(k))
			scratch = append(scratch, frags[k][off:end]...)
			if err := writeFrame(bw, framePaths, vidsToBytes(scratch)); err != nil {
				return
			}
		}
	}
	trailer := doneTrailer{
		Emigrants:  m.Emigrants.Value(self) - before.Emigrants,
		Immigrants: m.Immigrants.Value(self) - before.Immigrants,
		Frames:     m.Frames.Value(self) - before.Frames,
		FrameWords: m.FrameWords.Value(self) - before.FrameWords,
		VPSteps:    r.vpSteps,
	}
	b, err := json.Marshal(trailer)
	if err != nil {
		fail(err)
		return
	}
	if err := writeFrame(bw, frameDone, b); err != nil {
		return
	}
	bw.Flush()
}
