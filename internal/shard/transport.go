package shard

import (
	"context"

	"flashmob/internal/graph"
)

// Transport delivers exchange frames between shards. One Transport
// instance is one shard's port onto the mesh: dest/src are peer shard
// indices. The exchange protocol is strict BSP lockstep — every shard
// sends one (possibly empty) frame to every peer per round, then
// receives one from every peer — so Send/Recv need no framing beyond the
// frame itself, and per-pair FIFO order is the only delivery guarantee a
// Transport must provide.
//
// Ownership: a sent frame must stay untouched by the receiver's side
// until its Recv round completes; the sender may reuse the frame's
// backing two rounds later (the exchange ping-pongs two outbox
// generations, which the BSP lockstep makes safe — see Exchange).
type Transport interface {
	// Send delivers frame to peer dest. Blocks only under transient
	// backpressure; ctx cancellation aborts with its error.
	Send(ctx context.Context, dest int, frame []graph.VID) error
	// Recv returns the next frame from peer src, blocking until one
	// arrives or ctx cancels.
	Recv(ctx context.Context, src int) ([]graph.VID, error)
	// Close releases the port. Safe to call on every shard's port; a
	// blocked peer unblocks with an error.
	Close() error
}

// chanMeshCap bounds outstanding frames per directed pair. BSP lockstep
// keeps at most two in flight (a peer can run at most one exchange round
// ahead before it needs our frame), so 4 leaves slack without buffering
// whole waves.
const chanMeshCap = 4

// ChanMesh is the in-process transport: an S×S matrix of buffered
// channels carrying frame slices by reference (the lockstep ownership
// rule above makes the zero-copy handoff safe).
type ChanMesh struct {
	chans [][]chan []graph.VID
}

// NewChanMesh builds the channel matrix for shards peers.
func NewChanMesh(shards int) *ChanMesh {
	m := &ChanMesh{chans: make([][]chan []graph.VID, shards)}
	for i := range m.chans {
		m.chans[i] = make([]chan []graph.VID, shards)
		for j := range m.chans[i] {
			if i != j {
				m.chans[i][j] = make(chan []graph.VID, chanMeshCap)
			}
		}
	}
	return m
}

// Bind returns shard self's port onto the mesh.
func (m *ChanMesh) Bind(self int) Transport { return &chanPort{m: m, self: self} }

type chanPort struct {
	m    *ChanMesh
	self int
}

func (p *chanPort) Send(ctx context.Context, dest int, frame []graph.VID) error {
	select {
	case p.m.chans[p.self][dest] <- frame:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *chanPort) Recv(ctx context.Context, src int) ([]graph.VID, error) {
	select {
	case f := <-p.m.chans[src][p.self]:
		return f, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close is a no-op: the mesh holds no resources beyond its channels, and
// cancellation (not closing) is how a stuck peer unblocks.
func (p *chanPort) Close() error { return nil }
