package shard

import (
	"context"
	"runtime"
	"testing"
	"time"

	"flashmob/internal/algo"
	"flashmob/internal/core"
	"flashmob/internal/gen"
	"flashmob/internal/graph"
	"flashmob/internal/part"
)

// testGraph builds a degree-sorted undirected power-law graph — the
// engine's production layout, which is what makes shard ranges
// contiguous in the degree-sorted vertex space.
func testGraph(t testing.TB, n uint32, seed uint64) *graph.CSR {
	t.Helper()
	dir, err := gen.PowerLaw(gen.PowerLawConfig{
		NumVertices: n, AvgDegree: 6, Alpha: 0.7, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var edges []graph.Edge
	for v := uint32(0); v < dir.NumVertices(); v++ {
		for _, w := range dir.Neighbors(v) {
			if v != w {
				edges = append(edges, graph.Edge{Src: v, Dst: w})
			}
		}
	}
	res, err := graph.Build(edges, graph.BuildOptions{Undirected: true, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	return graph.SortByDegreeDesc(res.Graph).Graph
}

func testEngine(t testing.TB, g *graph.CSR, spec algo.Spec) *core.Engine {
	t.Helper()
	e, err := core.New(g, spec, core.Config{
		Workers: 2, Seed: 11, Planner: core.PlannerMCKP, RecordHistory: true,
		Part: part.Config{TargetGroups: 2, MinVPSizeLog: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func historiesMatch(t *testing.T, tag string, a, b interface {
	NumSteps() int
	NumWalkers() int
	At(i, j int) graph.VID
}) {
	t.Helper()
	if a.NumSteps() != b.NumSteps() || a.NumWalkers() != b.NumWalkers() {
		t.Fatalf("%s: shape %dx%d vs %dx%d", tag, a.NumSteps(), a.NumWalkers(), b.NumSteps(), b.NumWalkers())
	}
	for i := 0; i < a.NumSteps(); i++ {
		for j := 0; j < a.NumWalkers(); j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("%s: step %d walker %d: %d vs %d", tag, i, j, a.At(i, j), b.At(i, j))
			}
		}
	}
}

// TestTopologyBitwiseIdentical is the tentpole's core claim: sharded
// trajectories are bitwise-identical to the single-engine RunMixed for
// shard counts {1, 2, 4}, across a mixed cohort batch (first-order,
// node2vec aux channels, stop-prob restarts, ragged step counts). Shard
// count 1 is the degenerate topology — still exercising the exchange
// barrier machinery with zero peers.
func TestTopologyBitwiseIdentical(t *testing.T) {
	g := testGraph(t, 800, 3)
	e := testEngine(t, g, algo.DeepWalk())
	defer e.Close()

	cohorts := []core.Cohort{
		{Spec: algo.DeepWalk(), Walkers: 500, Steps: 8, Seed: 41},
		{Spec: algo.Node2Vec(0.5, 2), Walkers: 300, Steps: 5, Seed: 42},
		{Spec: algo.PageRankWalk(0.85), Walkers: 200, Steps: 8, Seed: 43},
	}
	ref, err := e.RunMixed(cohorts)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 2, 4} {
		topo, err := New(e, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		res, err := topo.RunMixed(context.Background(), cohorts)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for k := range cohorts {
			historiesMatch(t, "", ref.Cohorts[k].History, res.Cohorts[k].History)
		}
		// The per-partition walker-step weights must match too: shards
		// sampled exactly the partition chunks the single engine did.
		for vp := range ref.VPSteps {
			if ref.VPSteps[vp] != res.VPSteps[vp] {
				t.Fatalf("shards=%d: VPSteps[%d] = %d, single-engine %d", shards, vp, res.VPSteps[vp], ref.VPSteps[vp])
			}
		}
		rep := topo.MetricsReport()
		if shards > 1 {
			var emi, imm uint64
			for _, v := range rep.Vectors {
				for _, x := range v.Values {
					switch v.Desc.Name {
					case "shard_emigrants_total":
						emi += x
					case "shard_immigrants_total":
						imm += x
					}
				}
			}
			if emi == 0 {
				t.Fatalf("shards=%d: no emigrants on a power-law graph", shards)
			}
			if emi != imm {
				t.Fatalf("shards=%d: emigrants %d != immigrants %d", shards, emi, imm)
			}
		}
	}
}

// TestTopologyRepeatedRunsAndConcurrency pins that one Topology serves
// repeated and concurrent RunMixed calls with identical results — the
// serving layer's usage pattern.
func TestTopologyRepeatedRunsAndConcurrency(t *testing.T) {
	g := testGraph(t, 400, 7)
	e := testEngine(t, g, algo.DeepWalk())
	defer e.Close()
	topo, err := New(e, 2)
	if err != nil {
		t.Fatal(err)
	}
	cohorts := []core.Cohort{{Spec: algo.DeepWalk(), Walkers: 200, Steps: 6, Seed: 5}}
	first, err := topo.RunMixed(context.Background(), cohorts)
	if err != nil {
		t.Fatal(err)
	}
	const par = 3
	results := make([]*core.MixedResult, par)
	errs := make([]error, par)
	done := make(chan int, par)
	for i := 0; i < par; i++ {
		go func(i int) {
			results[i], errs[i] = topo.RunMixed(context.Background(), cohorts)
			done <- i
		}(i)
	}
	for i := 0; i < par; i++ {
		<-done
	}
	for i := 0; i < par; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		historiesMatch(t, "concurrent", first.Cohorts[0].History, results[i].Cohorts[0].History)
	}
}

// TestTopologyCancellation cancels mid-run and demands a clean error
// with no goroutine leaks — the chan-transport half of the drain
// guarantee (the TCP half lives in worker_test.go).
func TestTopologyCancellation(t *testing.T) {
	g := testGraph(t, 400, 9)
	e := testEngine(t, g, algo.DeepWalk())
	defer e.Close()
	topo, err := New(e, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := topo.RunMixed(ctx, []core.Cohort{{Spec: algo.DeepWalk(), Walkers: 300, Steps: 50, Seed: 1}}); err == nil {
		t.Fatal("canceled run returned nil error")
	}
	// A mid-run cancel: let some supersteps happen, then pull the plug.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel2()
	}()
	_, err = topo.RunMixed(ctx2, []core.Cohort{{Spec: algo.DeepWalk(), Walkers: 2000, Steps: 5000, Seed: 1}})
	if err == nil {
		t.Log("run finished before cancel; still checking for leaks")
	}
	for i := 0; i < 50 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, after)
	}
}
