// Package perfgate turns the repo's one-shot BENCH_*.json snapshots into
// a gated benchmark trajectory. It provides the four pieces the grid
// runner (cmd/fmgrid) composes:
//
//   - a declarative manifest (experiments.json): experiment name ×
//     parameter grid × repeat count, plus the gate's noise policy;
//   - a runner that shells into cmd/fmbench once per (cell, repeat) and
//     collects the raw BENCH_*.json each run writes;
//   - aggregation: every numeric leaf of the raw reports becomes a
//     metric, folded across repeats into mean/std/min/max;
//   - the gate: a fresh grid report compared cell-by-cell against a
//     committed baseline, where a metric regresses only when it moves
//     past a noise band of k·σ derived from the baseline's recorded
//     std (floored, so near-zero-variance cells do not gate on dust).
//
// The JSON schemas (manifest, grid report, verdicts) are documented
// field-by-field in docs/BENCHMARKING.md, and a coverage test keeps
// that file complete.
package perfgate

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// ManifestSchemaVersion is the schema_version a manifest must carry;
// bump it when the manifest format changes incompatibly.
const ManifestSchemaVersion = 1

// Manifest is the parsed experiments.json: which experiments to run, on
// what parameter grids, how often, and how to gate the results.
type Manifest struct {
	// SchemaVersion must equal ManifestSchemaVersion.
	SchemaVersion int `json:"schema_version"`
	// Repeats is the default repeat count for experiments that do not
	// set their own (defaults to 1 when absent).
	Repeats int `json:"repeats,omitempty"`
	// Gate is the noise policy baseline comparisons use.
	Gate GateConfig `json:"gate"`
	// Experiments lists the grid, in execution order.
	Experiments []Experiment `json:"experiments"`
}

// Experiment is one fmbench experiment plus the parameter grid to sweep.
type Experiment struct {
	// Name is the fmbench -exp name (e.g. "shuffle").
	Name string `json:"name"`
	// Output is the BENCH file the experiment writes into its -outdir;
	// empty means "BENCH_<name>.json".
	Output string `json:"output,omitempty"`
	// Repeats overrides the manifest-level repeat count when > 0.
	Repeats int `json:"repeats,omitempty"`
	// Grid maps an fmbench flag name (without the dash) to the values to
	// sweep; the experiment runs once per element of the cartesian
	// product. Single-valued entries are fixed configuration.
	Grid map[string][]string `json:"grid,omitempty"`
}

// OutputFile returns the BENCH file name this experiment produces.
func (e Experiment) OutputFile() string {
	if e.Output != "" {
		return e.Output
	}
	return "BENCH_" + e.Name + ".json"
}

// RepeatsOrDefault resolves the effective repeat count against the
// manifest default, floored at 1.
func (e Experiment) RepeatsOrDefault(m *Manifest) int {
	r := e.Repeats
	if r == 0 {
		r = m.Repeats
	}
	if r < 1 {
		r = 1
	}
	return r
}

// Cell is one point of an experiment's parameter grid.
type Cell struct {
	// Params maps flag name → value for this cell.
	Params map[string]string `json:"params,omitempty"`
}

// Label renders the cell's parameters as a stable "k=v,k=v" string
// ("default" for the empty cell), used to match cells across reports.
func (c Cell) Label() string {
	if len(c.Params) == 0 {
		return "default"
	}
	keys := make([]string, 0, len(c.Params))
	for k := range c.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + c.Params[k]
	}
	return strings.Join(parts, ",")
}

// Cells expands the experiment's grid into the cartesian product of its
// flag values, in deterministic (sorted flag name, listed value) order.
func (e Experiment) Cells() []Cell {
	flags := make([]string, 0, len(e.Grid))
	for f := range e.Grid {
		flags = append(flags, f)
	}
	sort.Strings(flags)
	cells := []Cell{{}}
	for _, f := range flags {
		vals := e.Grid[f]
		if len(vals) == 0 {
			continue
		}
		next := make([]Cell, 0, len(cells)*len(vals))
		for _, c := range cells {
			for _, v := range vals {
				p := make(map[string]string, len(c.Params)+1)
				for k, pv := range c.Params {
					p[k] = pv
				}
				p[f] = v
				next = append(next, Cell{Params: p})
			}
		}
		cells = next
	}
	return cells
}

// LoadManifest reads and validates an experiments.json manifest.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &m, nil
}

// Validate checks the manifest's structural invariants: the schema
// version, at least one experiment, unique experiment names, and sane
// repeat counts and gate parameters.
func (m *Manifest) Validate() error {
	if m.SchemaVersion != ManifestSchemaVersion {
		return fmt.Errorf("manifest schema_version %d, this tool understands %d",
			m.SchemaVersion, ManifestSchemaVersion)
	}
	if len(m.Experiments) == 0 {
		return fmt.Errorf("manifest lists no experiments")
	}
	if m.Repeats < 0 {
		return fmt.Errorf("manifest repeats %d: must be >= 0", m.Repeats)
	}
	seen := make(map[string]bool, len(m.Experiments))
	for i, e := range m.Experiments {
		if e.Name == "" {
			return fmt.Errorf("experiment %d has no name", i)
		}
		if seen[e.Name] {
			return fmt.Errorf("experiment %q listed twice", e.Name)
		}
		seen[e.Name] = true
		if e.Repeats < 0 {
			return fmt.Errorf("experiment %q: repeats %d must be >= 0", e.Name, e.Repeats)
		}
		for f, vals := range e.Grid {
			if len(vals) == 0 {
				return fmt.Errorf("experiment %q: grid flag %q has no values", e.Name, f)
			}
			if strings.HasPrefix(f, "-") {
				return fmt.Errorf("experiment %q: grid flag %q must not carry its dash", e.Name, f)
			}
		}
	}
	return m.Gate.Validate()
}
