package perfgate

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Run is one raw fmbench report flattened into leaves: every numeric
// leaf keyed by its JSON path becomes a metric; string and bool leaves
// become configuration (compared exactly, never averaged).
type Run struct {
	// Metrics maps flattened key → numeric value.
	Metrics map[string]float64
	// Config maps flattened key → the string form of a non-numeric leaf.
	Config map[string]string
}

// metaKeys are the provenance fields stamped onto every raw report
// (see Meta); they describe the run, not the measurement, so the
// flattener drops them at the top level.
var metaKeys = map[string]bool{
	"schema_version": true,
	"git_sha":        true,
	"generated_unix": true,
	"host":           true,
}

// FlattenJSON decomposes one raw BENCH_*.json document into a Run.
//
// Keys are JSON paths: object fields join with ".", array elements of
// objects become "name[i:label]" where the label is the element's
// string-valued fields (sorted by field name, "/"-joined) — so
// "variants[3:pool/wc-gather].ns_per_walker" stays stable and readable
// even when the array order is what identifies the cell. Arrays of
// scalars collapse into one Config entry ("8/32/128"). Top-level
// provenance fields (schema_version, git_sha, generated_unix, host) are
// dropped: they describe the run, not the measurement.
func FlattenJSON(data []byte) (*Run, error) {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("flatten: %w", err)
	}
	r := &Run{Metrics: map[string]float64{}, Config: map[string]string{}}
	for _, k := range sortedKeys(doc) {
		if metaKeys[k] {
			continue
		}
		r.flatten(k, doc[k])
	}
	return r, nil
}

// flatten dispatches one JSON value under the given key prefix.
func (r *Run) flatten(key string, v any) {
	switch t := v.(type) {
	case float64:
		r.Metrics[key] = t
	case bool:
		r.Config[key] = fmt.Sprintf("%v", t)
	case string:
		r.Config[key] = t
	case nil:
		// absent value: nothing to record
	case map[string]any:
		for _, k := range sortedKeys(t) {
			r.flatten(key+"."+k, t[k])
		}
	case []any:
		r.flattenArray(key, t)
	}
}

// flattenArray handles the two array shapes BENCH reports use: arrays
// of objects (measurement variants) and arrays of scalars (config
// lists like mix_walkers).
func (r *Run) flattenArray(key string, arr []any) {
	allObjects := len(arr) > 0
	for _, e := range arr {
		if _, ok := e.(map[string]any); !ok {
			allObjects = false
			break
		}
	}
	if !allObjects {
		parts := make([]string, len(arr))
		for i, e := range arr {
			parts[i] = fmt.Sprintf("%v", e)
		}
		r.Config[key] = strings.Join(parts, "/")
		return
	}
	for i, e := range arr {
		obj := e.(map[string]any)
		r.flatten(fmt.Sprintf("%s[%d:%s]", key, i, elementLabel(obj)), obj)
	}
}

// elementLabel derives a human-readable identity for one array element
// from its string-valued fields, sorted by field name for stability.
func elementLabel(obj map[string]any) string {
	var parts []string
	for _, k := range sortedKeys(obj) {
		if s, ok := obj[k].(string); ok {
			parts = append(parts, sanitizeLabel(s))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, "/")
}

// sanitizeLabel keeps labels free of the characters the key syntax uses.
func sanitizeLabel(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '[', ']', '.', ' ', ':':
			return '_'
		}
		return r
	}, s)
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
