package perfgate

import (
	"fmt"
	"math"
	"strings"
)

// Direction classifies what movement of a metric counts as a regression.
type Direction int

// The four metric classes the gate distinguishes. Informational metrics
// are recorded and reported but never gated: counts, configuration
// echoes, and anything whose "good" direction the name rules cannot
// establish.
const (
	// Informational metrics are recorded but not gated.
	Informational Direction = iota
	// LowerIsBetter gates metrics like ns/step and tail latency.
	LowerIsBetter
	// HigherIsBetter gates metrics like goodput and speedups.
	HigherIsBetter
	// Ignored metrics are dropped from reports and the gate entirely
	// (noise-of-noise fields like *_std, provenance echoes).
	Ignored
)

// String names the direction for reports.
func (d Direction) String() string {
	switch d {
	case LowerIsBetter:
		return "lower"
	case HigherIsBetter:
		return "higher"
	case Ignored:
		return "ignored"
	default:
		return "info"
	}
}

// Built-in metric-name classification, matched by substring against the
// full flattened key (manifest-supplied patterns take precedence). The
// defaults cover every metric the six fmbench experiments emit today;
// unmatched numeric leaves fall through to Informational, so a new
// metric is recorded from its first run and only gated once a rule
// names it.
var (
	defaultIgnore = []string{"_std", "schema_version", "generated_unix", "gomaxprocs", "repeats"}
	defaultLower  = []string{"ns_per", "_ns", "p50_ms", "p99_ms", "mean_run_ms", "wall_seconds", "io_wait_share", "failed"}
	defaultHigher = []string{"per_sec", "speedup", "_vs_", "mb_per_sec", "goodput"}
)

// GateConfig is the gate's noise policy: the width of the allowed band
// around each baseline mean and the metric-name classification rules.
type GateConfig struct {
	// Sigma scales the noise band: a metric regresses only when it moves
	// more than Sigma × noise past the baseline mean (0 means the
	// default of 3).
	Sigma float64 `json:"sigma,omitempty"`
	// RelFloor floors the noise at this fraction of |baseline mean|, so
	// cells whose recorded std is ~0 (e.g. repeats=1) still tolerate
	// run-to-run jitter (0 means the default of 0.05).
	RelFloor float64 `json:"rel_floor,omitempty"`
	// AbsFloor floors the noise absolutely, protecting near-zero means
	// where a relative floor vanishes (0 means the default of 1e-9).
	AbsFloor float64 `json:"abs_floor,omitempty"`
	// Higher adds higher-is-better key patterns (substring match).
	Higher []string `json:"higher,omitempty"`
	// Lower adds lower-is-better key patterns (substring match).
	Lower []string `json:"lower,omitempty"`
	// Ignore adds key patterns excluded from gating and reports.
	Ignore []string `json:"ignore,omitempty"`
}

// Validate rejects nonsensical noise parameters.
func (g GateConfig) Validate() error {
	if g.Sigma < 0 || g.RelFloor < 0 || g.AbsFloor < 0 {
		return fmt.Errorf("gate: sigma/rel_floor/abs_floor must be >= 0")
	}
	return nil
}

// sigma returns the effective k of the k·σ band.
func (g GateConfig) sigma() float64 {
	if g.Sigma == 0 {
		return 3
	}
	return g.Sigma
}

// relFloor returns the effective relative noise floor.
func (g GateConfig) relFloor() float64 {
	if g.RelFloor == 0 {
		return 0.05
	}
	return g.RelFloor
}

// absFloor returns the effective absolute noise floor.
func (g GateConfig) absFloor() float64 {
	if g.AbsFloor == 0 {
		return 1e-9
	}
	return g.AbsFloor
}

// Band returns the half-width of the allowed interval around a baseline
// statistic: Sigma × max(recorded std, RelFloor·|mean|, AbsFloor).
func (g GateConfig) Band(base Stat) float64 {
	noise := base.Std
	if f := g.relFloor() * math.Abs(base.Mean); f > noise {
		noise = f
	}
	if f := g.absFloor(); f > noise {
		noise = f
	}
	return g.sigma() * noise
}

// Direction classifies a metric key: manifest-supplied patterns first
// (ignore, then lower, then higher), then the built-in defaults in the
// same order, then Informational.
func (g GateConfig) Direction(key string) Direction {
	for _, rules := range []struct {
		pats []string
		dir  Direction
	}{
		{g.Ignore, Ignored},
		{g.Lower, LowerIsBetter},
		{g.Higher, HigherIsBetter},
		{defaultIgnore, Ignored},
		{defaultLower, LowerIsBetter},
		{defaultHigher, HigherIsBetter},
	} {
		for _, p := range rules.pats {
			if p != "" && strings.Contains(key, p) {
				return rules.dir
			}
		}
	}
	return Informational
}
