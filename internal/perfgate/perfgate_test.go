package perfgate

import (
	"math"
	"strings"
	"testing"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v", what, got, want)
	}
}

func TestFoldValues(t *testing.T) {
	s := foldValues([]float64{2, 4, 6})
	almost(t, s.Mean, 4, 1e-12, "mean")
	almost(t, s.Std, math.Sqrt(8.0/3.0), 1e-12, "population std")
	almost(t, s.Min, 2, 0, "min")
	almost(t, s.Max, 6, 0, "max")
	if s.N != 3 {
		t.Errorf("n = %d, want 3", s.N)
	}
}

// TestFoldValuesSingleRepeat pins the repeats=1 edge: std must be
// exactly 0 (the gate's floor machinery, not the std, carries the noise
// allowance then).
func TestFoldValuesSingleRepeat(t *testing.T) {
	s := foldValues([]float64{7.5})
	if s.Std != 0 {
		t.Errorf("single-repeat std = %v, want exactly 0", s.Std)
	}
	almost(t, s.Mean, 7.5, 0, "mean")
	if s.Min != 7.5 || s.Max != 7.5 || s.N != 1 {
		t.Errorf("min/max/n = %v/%v/%d, want 7.5/7.5/1", s.Min, s.Max, s.N)
	}
}

func TestFoldRunsShapeMismatch(t *testing.T) {
	a := &Run{Metrics: map[string]float64{"x": 1}, Config: map[string]string{"g": "YT"}}
	b := &Run{Metrics: map[string]float64{"x": 2, "y": 3}, Config: map[string]string{"g": "YT"}}
	if _, err := FoldRuns(Cell{}, []*Run{a, b}); err == nil {
		t.Fatal("metric-set mismatch across repeats must be an error")
	}
	c := &Run{Metrics: map[string]float64{"x": 2}, Config: map[string]string{"g": "TW"}}
	if _, err := FoldRuns(Cell{}, []*Run{a, c}); err == nil {
		t.Fatal("config-value mismatch across repeats must be an error")
	}
	folded, err := FoldRuns(Cell{Params: map[string]string{"steps": "4"}}, []*Run{a, {Metrics: map[string]float64{"x": 3}, Config: map[string]string{"g": "YT"}}})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, folded.Metrics["x"].Mean, 2, 1e-12, "folded mean")
	if folded.Repeats != 2 || folded.Label() != "steps=4" {
		t.Errorf("repeats/label = %d/%q", folded.Repeats, folded.Label())
	}
}

func TestFlattenJSON(t *testing.T) {
	doc := []byte(`{
		"schema_version": 2,
		"git_sha": "abc",
		"generated_unix": 5,
		"host": {"os": "linux"},
		"experiment": "serve",
		"gomaxprocs": 1,
		"mix_walkers": [8, 32, 128],
		"cold": false,
		"variants": [
			{"name": "batch1", "window_ms": 1, "goodput_walker_steps_per_sec": 300000.5},
			{"name": "window-1ms", "window_ms": 1, "goodput_walker_steps_per_sec": 1800000}
		]
	}`)
	r, err := FlattenJSON(doc)
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Metrics["variants[0:batch1].goodput_walker_steps_per_sec"]; v != 300000.5 {
		t.Errorf("variant metric = %v (keys %v)", v, r.Metrics)
	}
	if v := r.Metrics["variants[1:window-1ms].window_ms"]; v != 1 {
		t.Errorf("second variant window = %v", v)
	}
	if got := r.Config["mix_walkers"]; got != "8/32/128" {
		t.Errorf("scalar array config = %q", got)
	}
	if got := r.Config["experiment"]; got != "serve" {
		t.Errorf("experiment config = %q", got)
	}
	if got := r.Config["cold"]; got != "false" {
		t.Errorf("bool config = %q", got)
	}
	// Provenance must not leak into metrics or config.
	for _, k := range []string{"schema_version", "generated_unix", "gomaxprocs"} {
		if _, ok := r.Metrics[k]; k != "gomaxprocs" && ok {
			t.Errorf("meta key %q leaked into metrics", k)
		}
	}
	if _, ok := r.Config["git_sha"]; ok {
		t.Error("git_sha leaked into config")
	}
	if _, ok := r.Config["host.os"]; ok {
		t.Error("host fingerprint leaked into config")
	}
}

func TestElementLabelStability(t *testing.T) {
	obj := map[string]any{"variant": "wc gather", "exec": "pool", "workers": 4.0}
	// Sorted field order: exec before variant; spaces sanitized.
	if got := elementLabel(obj); got != "pool/wc_gather" {
		t.Errorf("label = %q, want pool/wc_gather", got)
	}
	if got := elementLabel(map[string]any{"n": 1.0}); got != "-" {
		t.Errorf("label without strings = %q, want -", got)
	}
}

func TestDirectionRules(t *testing.T) {
	gc := GateConfig{}
	cases := map[string]Direction{
		"variants[0:b1].ns_per_walker":                LowerIsBetter,
		"end_to_end[0:YT].ns_per_step":                LowerIsBetter,
		"variants[1:w].served_p99_ms":                 LowerIsBetter,
		"variants[1:w].goodput_walker_steps_per_sec":  HigherIsBetter,
		"variants[2:d2].speedup_vs_baseline":          HigherIsBetter,
		"variants[1:w].goodput_std":                   Ignored,
		"variants[1:w].p99_std_ms":                    Ignored,
		"offered_qps":                                 Informational,
		"variants[0:b1].served":                       Informational,
		"block_budget_bytes":                          Informational,
		"variants[0:baseline-sync].io_wait_share":     LowerIsBetter,
		"variants[0:baseline-sync].stream_mb_per_sec": HigherIsBetter,
	}
	for key, want := range cases {
		if got := gc.Direction(key); got != want {
			t.Errorf("Direction(%q) = %v, want %v", key, got, want)
		}
	}
	// Manifest-supplied patterns take precedence over built-ins.
	custom := GateConfig{Ignore: []string{"goodput"}, Lower: []string{"offered_qps"}}
	if got := custom.Direction("variants[1:w].goodput_walker_steps_per_sec"); got != Ignored {
		t.Errorf("custom ignore lost to builtin: %v", got)
	}
	if got := custom.Direction("offered_qps"); got != LowerIsBetter {
		t.Errorf("custom lower ignored: %v", got)
	}
}

// TestBandFloors pins the noise model: the band is k × max(std,
// rel_floor·|mean|, abs_floor), so near-zero-variance cells still
// tolerate jitter and near-zero means still have a nonzero band.
func TestBandFloors(t *testing.T) {
	gc := GateConfig{Sigma: 3, RelFloor: 0.10, AbsFloor: 0.001}
	// std dominates
	almost(t, gc.Band(Stat{Mean: 100, Std: 20}), 60, 1e-9, "std band")
	// rel floor dominates (std ~ 0, e.g. repeats=1)
	almost(t, gc.Band(Stat{Mean: 100, Std: 0}), 30, 1e-9, "rel-floor band")
	// abs floor dominates (mean ~ 0)
	almost(t, gc.Band(Stat{Mean: 0, Std: 0}), 0.003, 1e-12, "abs-floor band")
	// defaults: sigma 3, rel 5%, abs 1e-9
	def := GateConfig{}
	almost(t, def.Band(Stat{Mean: 10, Std: 0}), 1.5, 1e-9, "default band")
}

func TestManifestCellExpansion(t *testing.T) {
	e := Experiment{
		Name: "x",
		Grid: map[string][]string{
			"steps":   {"4", "8"},
			"workers": {"1", "2", "4"},
			"targetv": {"8000"},
		},
	}
	cells := e.Cells()
	if len(cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(cells))
	}
	// Deterministic order: sorted flag names, listed value order.
	if cells[0].Label() != "steps=4,targetv=8000,workers=1" {
		t.Errorf("first cell %q", cells[0].Label())
	}
	if cells[5].Label() != "steps=8,targetv=8000,workers=4" {
		t.Errorf("last cell %q", cells[5].Label())
	}
	if (Experiment{Name: "y"}).Cells()[0].Label() != "default" {
		t.Error("empty grid must yield the default cell")
	}
}

func TestManifestValidate(t *testing.T) {
	ok := Manifest{SchemaVersion: 1, Experiments: []Experiment{{Name: "a"}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	bad := []Manifest{
		{SchemaVersion: 99, Experiments: []Experiment{{Name: "a"}}},
		{SchemaVersion: 1},
		{SchemaVersion: 1, Experiments: []Experiment{{Name: "a"}, {Name: "a"}}},
		{SchemaVersion: 1, Experiments: []Experiment{{Name: "a", Grid: map[string][]string{"f": {}}}}},
		{SchemaVersion: 1, Experiments: []Experiment{{Name: "a", Grid: map[string][]string{"-f": {"1"}}}}},
		{SchemaVersion: 1, Experiments: []Experiment{{Name: "a", Repeats: -1}}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad manifest %d accepted", i)
		}
	}
}

func TestExperimentDefaults(t *testing.T) {
	m := &Manifest{SchemaVersion: 1, Repeats: 5}
	if got := (Experiment{Name: "a"}).RepeatsOrDefault(m); got != 5 {
		t.Errorf("manifest default repeats: got %d", got)
	}
	if got := (Experiment{Name: "a", Repeats: 2}).RepeatsOrDefault(m); got != 2 {
		t.Errorf("experiment override: got %d", got)
	}
	if got := (Experiment{Name: "a"}).RepeatsOrDefault(&Manifest{}); got != 1 {
		t.Errorf("floor: got %d", got)
	}
	if got := (Experiment{Name: "shuffle"}).OutputFile(); got != "BENCH_shuffle.json" {
		t.Errorf("default output file %q", got)
	}
	if got := (Experiment{Name: "a", Output: "X.json"}).OutputFile(); got != "X.json" {
		t.Errorf("explicit output file %q", got)
	}
}

func TestGateConfigValidate(t *testing.T) {
	if err := (GateConfig{Sigma: -1}).Validate(); err == nil {
		t.Error("negative sigma accepted")
	}
	if err := (GateConfig{Sigma: 2, RelFloor: 0.5}).Validate(); err != nil {
		t.Errorf("valid gate rejected: %v", err)
	}
}

// report builds a minimal grid report for gate tests.
func report(exp string, schema int, metrics map[string]Stat) *GridReport {
	return &GridReport{
		Meta:       Meta{SchemaVersion: schema, GitSHA: "test"},
		Experiment: exp,
		Repeats:    3,
		Cells: []*CellResult{{
			Repeats: 3,
			Config:  map[string]string{"graph": "YT"},
			Metrics: metrics,
		}},
	}
}

// TestGateBoundary pins the k·σ verdict exactly at the band edge:
// movement equal to the band is OK, an epsilon past it regresses.
func TestGateBoundary(t *testing.T) {
	gc := GateConfig{Sigma: 3, RelFloor: 1e-9, AbsFloor: 1e-12}
	base := report("x", ReportSchemaVersion, map[string]Stat{
		"variants[0:a].ns_per_step": {Mean: 100, Std: 2, N: 3},
	})
	band := gc.Band(base.Cells[0].Metrics["variants[0:a].ns_per_step"]) // = 6

	atEdge := report("x", ReportSchemaVersion, map[string]Stat{
		"variants[0:a].ns_per_step": {Mean: 100 + band, Std: 1, N: 3},
	})
	res, err := Compare(base, atEdge, gc)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Cells[0].Metrics[0].Verdict; v != VerdictOK {
		t.Errorf("at band edge: %v, want ok", v)
	}

	pastEdge := report("x", ReportSchemaVersion, map[string]Stat{
		"variants[0:a].ns_per_step": {Mean: 100 + band + 1e-6, Std: 1, N: 3},
	})
	res, err = Compare(base, pastEdge, gc)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Cells[0].Metrics[0].Verdict; v != VerdictRegressed {
		t.Errorf("past band edge: %v, want REGRESSED", v)
	}
	if res.Regressions() != 1 {
		t.Errorf("regressions = %d, want 1", res.Regressions())
	}

	improved := report("x", ReportSchemaVersion, map[string]Stat{
		"variants[0:a].ns_per_step": {Mean: 100 - band - 1e-6, Std: 1, N: 3},
	})
	res, err = Compare(base, improved, gc)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Cells[0].Metrics[0].Verdict; v != VerdictImproved {
		t.Errorf("improvement: %v, want improved", v)
	}
}

// TestGateDirection checks higher-is-better metrics regress downward.
func TestGateDirection(t *testing.T) {
	gc := GateConfig{Sigma: 2, RelFloor: 1e-9, AbsFloor: 1e-12}
	base := report("x", ReportSchemaVersion, map[string]Stat{
		"variants[0:a].goodput_walker_steps_per_sec": {Mean: 1000, Std: 50, N: 3},
	})
	worse := report("x", ReportSchemaVersion, map[string]Stat{
		"variants[0:a].goodput_walker_steps_per_sec": {Mean: 850, Std: 50, N: 3},
	})
	res, err := Compare(base, worse, gc)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Cells[0].Metrics[0].Verdict; v != VerdictRegressed {
		t.Errorf("goodput drop past band: %v, want REGRESSED", v)
	}
	better := report("x", ReportSchemaVersion, map[string]Stat{
		"variants[0:a].goodput_walker_steps_per_sec": {Mean: 1150, Std: 50, N: 3},
	})
	if res, _ = Compare(base, better, gc); res.Cells[0].Metrics[0].Verdict != VerdictImproved {
		t.Error("goodput gain past band must be improved")
	}
}

// TestGateNearZeroVarianceFloor is the repeats=1 scenario: std 0, so
// without the floor any jitter would regress; with the default 5% rel
// floor a 1% move is OK and a 20% move still fails.
func TestGateNearZeroVarianceFloor(t *testing.T) {
	gc := GateConfig{} // defaults: 3σ, 5% rel floor
	base := report("x", ReportSchemaVersion, map[string]Stat{
		"variants[0:a].ns_per_step": {Mean: 50, Std: 0, N: 1},
	})
	jitter := report("x", ReportSchemaVersion, map[string]Stat{
		"variants[0:a].ns_per_step": {Mean: 50.5, Std: 0, N: 1},
	})
	res, err := Compare(base, jitter, gc)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Cells[0].Metrics[0].Verdict; v != VerdictOK {
		t.Errorf("1%% jitter on zero-variance cell: %v, want ok", v)
	}
	blown := report("x", ReportSchemaVersion, map[string]Stat{
		"variants[0:a].ns_per_step": {Mean: 60, Std: 0, N: 1},
	})
	if res, _ = Compare(base, blown, gc); res.Cells[0].Metrics[0].Verdict != VerdictRegressed {
		t.Error("20% regression must clear the 15% default band")
	}
}

// TestGateSchemaMismatch: structural divergence must be a loud error,
// never a vacuous pass.
func TestGateSchemaMismatch(t *testing.T) {
	gc := GateConfig{}
	base := report("x", ReportSchemaVersion, map[string]Stat{
		"variants[0:a].ns_per_step": {Mean: 50, Std: 1, N: 3},
	})

	// schema_version drift
	cur := report("x", ReportSchemaVersion+1, map[string]Stat{
		"variants[0:a].ns_per_step": {Mean: 50, Std: 1, N: 3},
	})
	if _, err := Compare(base, cur, gc); err == nil || !strings.Contains(err.Error(), "schema_version") {
		t.Errorf("schema_version mismatch: err = %v", err)
	}

	// experiment mismatch
	if _, err := Compare(base, report("y", ReportSchemaVersion, nil), gc); err == nil {
		t.Error("experiment mismatch accepted")
	}

	// baseline metric missing from current run
	cur = report("x", ReportSchemaVersion, map[string]Stat{
		"variants[0:renamed].ns_per_step": {Mean: 50, Std: 1, N: 3},
	})
	if _, err := Compare(base, cur, gc); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("missing metric: err = %v", err)
	}

	// config drift (e.g. the experiment switched graphs)
	cur = report("x", ReportSchemaVersion, map[string]Stat{
		"variants[0:a].ns_per_step": {Mean: 50, Std: 1, N: 3},
	})
	cur.Cells[0].Config = map[string]string{"graph": "TW"}
	if _, err := Compare(base, cur, gc); err == nil || !strings.Contains(err.Error(), "config") {
		t.Errorf("config drift: err = %v", err)
	}

	// baseline cell missing from current run
	cur = report("x", ReportSchemaVersion, map[string]Stat{
		"variants[0:a].ns_per_step": {Mean: 50, Std: 1, N: 3},
	})
	cur.Cells[0].Params = map[string]string{"steps": "8"}
	if _, err := Compare(base, cur, gc); err == nil || !strings.Contains(err.Error(), "cell") {
		t.Errorf("missing cell: err = %v", err)
	}
}

// TestGateNewMetricReported: a metric with no baseline is reported, not
// failed — the next intentional refresh baselines it.
func TestGateNewMetricReported(t *testing.T) {
	gc := GateConfig{}
	base := report("x", ReportSchemaVersion, map[string]Stat{
		"variants[0:a].ns_per_step": {Mean: 50, Std: 1, N: 3},
	})
	cur := report("x", ReportSchemaVersion, map[string]Stat{
		"variants[0:a].ns_per_step":  {Mean: 50, Std: 1, N: 3},
		"variants[0:a].ns_per_fancy": {Mean: 9, Std: 1, N: 3},
	})
	res, err := Compare(base, cur, gc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions() != 0 {
		t.Errorf("new metric counted as regression")
	}
	if len(res.Cells[0].NewMetrics) != 1 || res.Cells[0].NewMetrics[0] != "variants[0:a].ns_per_fancy" {
		t.Errorf("new metrics = %v", res.Cells[0].NewMetrics)
	}
}

// TestRenderMentionsRegression: the human-facing report must name the
// regressed metric with its numbers.
func TestRenderMentionsRegression(t *testing.T) {
	gc := GateConfig{}
	base := report("x", ReportSchemaVersion, map[string]Stat{
		"variants[0:a].ns_per_step": {Mean: 50, Std: 1, N: 3},
	})
	cur := report("x", ReportSchemaVersion, map[string]Stat{
		"variants[0:a].ns_per_step": {Mean: 80, Std: 1, N: 3},
	})
	res, err := Compare(base, cur, gc)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Render(&sb)
	out := sb.String()
	for _, want := range []string{"REGRESSED", "variants[0:a].ns_per_step", "+60.0%", "lower-is-better"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}
