package perfgate

import (
	"fmt"
	"math"
	"sort"
)

// Stat is one metric folded across a cell's repeats.
type Stat struct {
	// Mean is the arithmetic mean across repeats.
	Mean float64 `json:"mean"`
	// Std is the population standard deviation across repeats (0 when
	// N == 1) — the quantity the gate's noise band is derived from.
	Std float64 `json:"std"`
	// Min is the smallest observed value.
	Min float64 `json:"min"`
	// Max is the largest observed value.
	Max float64 `json:"max"`
	// N is the number of repeats folded in.
	N int `json:"n"`
}

// foldValues computes a Stat from one metric's per-repeat observations.
func foldValues(xs []float64) Stat {
	if len(xs) == 0 {
		return Stat{}
	}
	s := Stat{Min: xs[0], Max: xs[0], N: len(xs)}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(xs)))
	return s
}

// CellResult is one grid cell's aggregated measurement: the parameters
// that produced it, the exact configuration echoed by the runs, and
// every metric folded across the repeats.
type CellResult struct {
	// Params are the grid-cell flag values ("default" cell when empty).
	Params map[string]string `json:"params,omitempty"`
	// Repeats is how many runs folded into this cell.
	Repeats int `json:"repeats"`
	// Config holds the runs' string/bool leaves (graph names, variant
	// labels, cold_cache, …), identical across repeats by construction.
	Config map[string]string `json:"config,omitempty"`
	// Metrics maps flattened metric key → folded statistics.
	Metrics map[string]Stat `json:"metrics"`
}

// Label renders the cell's parameters like Cell.Label.
func (c *CellResult) Label() string {
	return Cell{Params: c.Params}.Label()
}

// MetricKeys returns the cell's metric keys in sorted order.
func (c *CellResult) MetricKeys() []string {
	keys := make([]string, 0, len(c.Metrics))
	for k := range c.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FoldRuns aggregates one cell's repeated runs into a CellResult. Every
// repeat must expose the same metric and config keys with identical
// config values: a divergence means the experiment is not measuring the
// same thing twice (e.g. a variant list changed shape mid-run), which
// is an error, not something to average over.
func FoldRuns(cell Cell, runs []*Run) (*CellResult, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("cell %s: no runs to fold", cell.Label())
	}
	first := runs[0]
	for i, r := range runs[1:] {
		if err := sameShape(first, r); err != nil {
			return nil, fmt.Errorf("cell %s: repeat %d differs from repeat 0: %w", cell.Label(), i+1, err)
		}
	}
	out := &CellResult{
		Params:  cell.Params,
		Repeats: len(runs),
		Config:  first.Config,
		Metrics: make(map[string]Stat, len(first.Metrics)),
	}
	for key := range first.Metrics {
		xs := make([]float64, len(runs))
		for i, r := range runs {
			xs[i] = r.Metrics[key]
		}
		out.Metrics[key] = foldValues(xs)
	}
	return out, nil
}

// sameShape verifies two runs expose identical metric keys and
// identical config keys and values.
func sameShape(a, b *Run) error {
	for k := range a.Metrics {
		if _, ok := b.Metrics[k]; !ok {
			return fmt.Errorf("metric %q missing", k)
		}
	}
	for k := range b.Metrics {
		if _, ok := a.Metrics[k]; !ok {
			return fmt.Errorf("unexpected metric %q", k)
		}
	}
	for k, v := range a.Config {
		bv, ok := b.Config[k]
		if !ok {
			return fmt.Errorf("config %q missing", k)
		}
		if bv != v {
			return fmt.Errorf("config %q is %q, was %q", k, bv, v)
		}
	}
	for k := range b.Config {
		if _, ok := a.Config[k]; !ok {
			return fmt.Errorf("unexpected config %q", k)
		}
	}
	return nil
}
