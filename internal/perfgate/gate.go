package perfgate

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Verdict is the gate's judgement on one gated metric.
type Verdict string

// The per-metric verdicts a comparison can produce.
const (
	// VerdictOK means the metric stayed inside the noise band.
	VerdictOK Verdict = "ok"
	// VerdictRegressed means the metric moved past the band in the bad
	// direction — this is what fails the gate.
	VerdictRegressed Verdict = "REGRESSED"
	// VerdictImproved means the metric moved past the band in the good
	// direction (reported, never failing).
	VerdictImproved Verdict = "improved"
)

// MetricVerdict is the gate's full accounting for one gated metric.
type MetricVerdict struct {
	// Key is the flattened metric key.
	Key string
	// Direction is the classification that decided good vs bad movement.
	Direction Direction
	// Base is the baseline statistic the band was derived from.
	Base Stat
	// Cur is the fresh measurement.
	Cur Stat
	// Band is the half-width of the allowed interval around Base.Mean.
	Band float64
	// Verdict is the judgement.
	Verdict Verdict
}

// DeltaPct is the relative movement of the mean versus baseline, in
// percent (+ means the value grew).
func (m MetricVerdict) DeltaPct() float64 {
	if m.Base.Mean == 0 {
		return 0
	}
	return 100 * (m.Cur.Mean - m.Base.Mean) / math.Abs(m.Base.Mean)
}

// CellVerdict aggregates one cell's metric verdicts.
type CellVerdict struct {
	// Label identifies the cell (Cell.Label form).
	Label string
	// Metrics holds one verdict per gated metric, key-sorted.
	Metrics []MetricVerdict
	// NewMetrics lists gated metrics present only in the fresh run
	// (future baselines will cover them; reported, never failing).
	NewMetrics []string
}

// Regressions counts this cell's regressed metrics.
func (c CellVerdict) Regressions() int {
	n := 0
	for _, m := range c.Metrics {
		if m.Verdict == VerdictRegressed {
			n++
		}
	}
	return n
}

// Improvements counts this cell's improved metrics.
func (c CellVerdict) Improvements() int {
	n := 0
	for _, m := range c.Metrics {
		if m.Verdict == VerdictImproved {
			n++
		}
	}
	return n
}

// GateResult is the gate's judgement for one experiment.
type GateResult struct {
	// Experiment names the compared reports.
	Experiment string
	// BaselineSHA and CurrentSHA record what was compared with what.
	BaselineSHA string
	// CurrentSHA is the fresh run's commit.
	CurrentSHA string
	// HostDrift notes a baseline recorded on a different-looking host
	// (reported, never failing — but it explains wide deltas).
	HostDrift string
	// Cells holds one verdict per baseline cell, in baseline order.
	Cells []CellVerdict
}

// Regressions counts regressed metrics across all cells.
func (g *GateResult) Regressions() int {
	n := 0
	for _, c := range g.Cells {
		n += c.Regressions()
	}
	return n
}

// Compare gates a fresh grid report against its committed baseline.
//
// A structural divergence — different schema versions, a baseline cell
// or gated metric missing from the fresh run, or a configuration leaf
// whose value changed — returns an error rather than a verdict: a gate
// that cannot find what it is supposed to check must fail loudly, not
// pass vacuously. Metric movement inside the k·σ noise band (see
// GateConfig.Band) is VerdictOK; movement past the band is
// VerdictRegressed or VerdictImproved by the metric's direction.
func Compare(base, cur *GridReport, gc GateConfig) (*GateResult, error) {
	if base.Experiment != cur.Experiment {
		return nil, fmt.Errorf("gate: baseline is experiment %q, current is %q", base.Experiment, cur.Experiment)
	}
	if base.SchemaVersion != cur.SchemaVersion {
		return nil, fmt.Errorf("gate: %s: baseline schema_version %d vs current %d — regenerate the baseline (make bench-grid && make bench-baseline)",
			base.Experiment, base.SchemaVersion, cur.SchemaVersion)
	}
	res := &GateResult{
		Experiment:  base.Experiment,
		BaselineSHA: base.GitSHA,
		CurrentSHA:  cur.GitSHA,
	}
	if base.Host.OS != cur.Host.OS || base.Host.Arch != cur.Host.Arch || base.Host.CPUs != cur.Host.CPUs {
		res.HostDrift = fmt.Sprintf("baseline host %s/%s ×%d, current %s/%s ×%d",
			base.Host.OS, base.Host.Arch, base.Host.CPUs, cur.Host.OS, cur.Host.Arch, cur.Host.CPUs)
	}
	for _, bc := range base.Cells {
		cc := cur.FindCell(bc.Label())
		if cc == nil {
			return nil, fmt.Errorf("gate: %s: baseline cell %q missing from current run — the grids diverged; update the manifest and baseline together",
				base.Experiment, bc.Label())
		}
		cv, err := compareCell(base.Experiment, bc, cc, gc)
		if err != nil {
			return nil, err
		}
		res.Cells = append(res.Cells, cv)
	}
	return res, nil
}

// compareCell gates one cell.
func compareCell(exp string, base, cur *CellResult, gc GateConfig) (CellVerdict, error) {
	cv := CellVerdict{Label: base.Label()}
	for k, bv := range base.Config {
		if cval, ok := cur.Config[k]; ok && cval != bv {
			return cv, fmt.Errorf("gate: %s cell %s: config %q is %q, baseline recorded %q — schema/workload mismatch, not a perf verdict",
				exp, cv.Label, k, cval, bv)
		}
	}
	for _, key := range base.MetricKeys() {
		dir := gc.Direction(key)
		if dir != LowerIsBetter && dir != HigherIsBetter {
			continue
		}
		bs := base.Metrics[key]
		cs, ok := cur.Metrics[key]
		if !ok {
			return cv, fmt.Errorf("gate: %s cell %s: baseline metric %q missing from current run — schema mismatch, refusing to pass vacuously",
				exp, cv.Label, key)
		}
		mv := MetricVerdict{Key: key, Direction: dir, Base: bs, Cur: cs, Band: gc.Band(bs)}
		mv.Verdict = judge(dir, bs.Mean, cs.Mean, mv.Band)
		cv.Metrics = append(cv.Metrics, mv)
	}
	for _, key := range cur.MetricKeys() {
		if _, ok := base.Metrics[key]; ok {
			continue
		}
		if dir := gc.Direction(key); dir == LowerIsBetter || dir == HigherIsBetter {
			cv.NewMetrics = append(cv.NewMetrics, key)
		}
	}
	sort.Strings(cv.NewMetrics)
	return cv, nil
}

// judge applies the band in the metric's direction.
func judge(dir Direction, base, cur, band float64) Verdict {
	switch {
	case cur > base+band:
		if dir == LowerIsBetter {
			return VerdictRegressed
		}
		return VerdictImproved
	case cur < base-band:
		if dir == LowerIsBetter {
			return VerdictImproved
		}
		return VerdictRegressed
	default:
		return VerdictOK
	}
}

// Render writes the human-facing verdict report: one table row per
// cell, then detail lines for every out-of-band metric.
func (g *GateResult) Render(w io.Writer) {
	fmt.Fprintf(w, "gate %s: baseline %s vs current %s\n", g.Experiment, g.BaselineSHA, g.CurrentSHA)
	if g.HostDrift != "" {
		fmt.Fprintf(w, "  note: %s\n", g.HostDrift)
	}
	fmt.Fprintf(w, "  %-40s %-10s %9s %9s %6s\n", "cell", "verdict", "regress", "improve", "gated")
	for _, c := range g.Cells {
		verdict := string(VerdictOK)
		if c.Regressions() > 0 {
			verdict = string(VerdictRegressed)
		} else if c.Improvements() > 0 {
			verdict = string(VerdictImproved)
		}
		fmt.Fprintf(w, "  %-40s %-10s %9d %9d %6d\n", c.Label, verdict, c.Regressions(), c.Improvements(), len(c.Metrics))
	}
	for _, c := range g.Cells {
		for _, m := range c.Metrics {
			if m.Verdict == VerdictOK {
				continue
			}
			fmt.Fprintf(w, "  %s cell %s: %s %s\n", g.Experiment, c.Label, m.Verdict, m.Key)
			fmt.Fprintf(w, "    baseline %.6g ± %.6g (n=%d), current %.6g, Δ %+.1f%%, allowed ± %.6g (%s-is-better)\n",
				m.Base.Mean, m.Base.Std, m.Base.N, m.Cur.Mean, m.DeltaPct(), m.Band, m.Direction)
		}
		if len(c.NewMetrics) > 0 {
			fmt.Fprintf(w, "  %s cell %s: %d new gated metric(s) with no baseline: %v\n",
				g.Experiment, c.Label, len(c.NewMetrics), c.NewMetrics)
		}
	}
}
