package perfgate

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// GridReport is the aggregated, versioned result of one experiment's
// grid sweep — the schema of every committed BENCH_*.json and of the
// bench/baseline/ trajectory files.
type GridReport struct {
	// Meta is the provenance header (schema_version, git_sha,
	// generated_unix, host), inlined at the top level.
	Meta
	// Experiment is the fmbench -exp name.
	Experiment string `json:"experiment"`
	// Repeats is the manifest-resolved repeat count per cell.
	Repeats int `json:"repeats"`
	// Cells holds one aggregated result per grid cell, in grid order.
	Cells []*CellResult `json:"cells"`
}

// FindCell returns the cell with the given label, or nil.
func (r *GridReport) FindCell(label string) *CellResult {
	for _, c := range r.Cells {
		if c.Label() == label {
			return c
		}
	}
	return nil
}

// WriteFile writes the report as indented JSON, creating parent
// directories as needed.
func (r *GridReport) WriteFile(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadGridReport parses one aggregated BENCH_*.json.
func ReadGridReport(path string) (*GridReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r GridReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Experiment == "" {
		return nil, fmt.Errorf("%s: no experiment name — not a grid report", path)
	}
	return &r, nil
}

// WriteCSV dumps every (experiment, cell, metric) statistic of the
// given reports as one CSV row — the raw material for plotting a
// trajectory or diffing two sweeps outside this tool.
func WriteCSV(w io.Writer, reports []*GridReport) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"experiment", "cell", "metric", "mean", "std", "min", "max", "n"}); err != nil {
		return err
	}
	for _, r := range reports {
		for _, c := range r.Cells {
			for _, key := range c.MetricKeys() {
				s := c.Metrics[key]
				rec := []string{
					r.Experiment, c.Label(), key,
					formatFloat(s.Mean), formatFloat(s.Std),
					formatFloat(s.Min), formatFloat(s.Max),
					strconv.Itoa(s.N),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarkdown renders the gated metrics of the given reports as one
// markdown table per experiment — the human-facing summary the grid
// runner drops next to the JSON artifacts.
func WriteMarkdown(w io.Writer, reports []*GridReport, gc GateConfig) error {
	fmt.Fprintf(w, "# Benchmark grid summary\n")
	for _, r := range reports {
		fmt.Fprintf(w, "\n## %s\n\n", r.Experiment)
		fmt.Fprintf(w, "commit `%s`, %d repeat(s)/cell, host %s/%s ×%d cpu\n\n",
			r.GitSHA, r.Repeats, r.Host.OS, r.Host.Arch, r.Host.CPUs)
		fmt.Fprintf(w, "| cell | metric | mean | std | min | max |\n")
		fmt.Fprintf(w, "|---|---|---|---|---|---|\n")
		rows := 0
		for _, c := range r.Cells {
			for _, key := range c.MetricKeys() {
				dir := gc.Direction(key)
				if dir != LowerIsBetter && dir != HigherIsBetter {
					continue
				}
				s := c.Metrics[key]
				fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s |\n",
					c.Label(), key, formatFloat(s.Mean), formatFloat(s.Std),
					formatFloat(s.Min), formatFloat(s.Max))
				rows++
			}
		}
		if rows == 0 {
			fmt.Fprintf(w, "| – | (no gated metrics) | | | | |\n")
		}
		fmt.Fprintf(w, "\n(gated metrics only — the full metric set lives in the JSON and CSV)\n")
	}
	return nil
}

// formatFloat renders a statistic compactly without losing the ability
// to round-trip typical benchmark magnitudes.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 8, 64)
}
