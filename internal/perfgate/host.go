package perfgate

import (
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// Host fingerprints the machine a benchmark ran on. Numbers are only
// comparable against a baseline recorded on a like host; the gate
// reports (but does not fail on) fingerprint drift, since CI runners
// legitimately rotate hardware.
type Host struct {
	// OS is runtime.GOOS.
	OS string `json:"os"`
	// Arch is runtime.GOARCH.
	Arch string `json:"arch"`
	// CPUs is runtime.NumCPU at stamp time.
	CPUs int `json:"cpus"`
	// GoVersion is the toolchain that built the harness.
	GoVersion string `json:"go_version"`
	// Hostname is best-effort ("" when unavailable).
	Hostname string `json:"hostname,omitempty"`
	// CPUModel is the /proc/cpuinfo model name on Linux, best-effort.
	CPUModel string `json:"cpu_model,omitempty"`
}

// Meta is the provenance header stamped into every benchmark artifact:
// raw per-run reports (cmd/fmbench) and aggregated grid reports
// (cmd/fmgrid) both carry it.
type Meta struct {
	// SchemaVersion is ReportSchemaVersion at write time.
	SchemaVersion int `json:"schema_version"`
	// GitSHA is the commit the harness ran from ("unknown" outside a
	// git checkout).
	GitSHA string `json:"git_sha"`
	// GeneratedUnix is the wall-clock stamp time in Unix seconds.
	GeneratedUnix int64 `json:"generated_unix"`
	// Host fingerprints the machine.
	Host Host `json:"host"`
}

// ReportSchemaVersion versions both BENCH report schemas (raw and
// grid); bump it when either changes incompatibly, and the gate will
// refuse to compare across versions.
const ReportSchemaVersion = 2

// NewMeta stamps the current commit, time, and host.
func NewMeta() Meta {
	return Meta{
		SchemaVersion: ReportSchemaVersion,
		GitSHA:        GitSHA(),
		GeneratedUnix: time.Now().Unix(),
		Host:          HostFingerprint(),
	}
}

// HostFingerprint collects the current machine's fingerprint.
func HostFingerprint() Host {
	h := Host{
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
	if name, err := os.Hostname(); err == nil {
		h.Hostname = name
	}
	h.CPUModel = cpuModel()
	return h
}

// cpuModel reads the first "model name" line of /proc/cpuinfo
// (best-effort, Linux-only; "" elsewhere).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// GitSHA returns the current HEAD commit (short form), or "unknown"
// when git or a checkout is unavailable — artifacts must still be
// writable from exported tarballs and temp dirs.
func GitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	sha := strings.TrimSpace(string(out))
	if sha == "" {
		return "unknown"
	}
	return sha
}
