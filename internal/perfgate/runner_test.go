package perfgate

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stubHarness writes an executable shell script that mimics fmbench's
// contract: parse -exp/-outdir plus grid flags, write
// BENCH_<exp>.json into -outdir. A counter file makes successive
// invocations return slightly different ns_per_step values so the
// mean/std folding has real variation to chew on.
func stubHarness(t *testing.T, dir string) string {
	t.Helper()
	counter := filepath.Join(dir, "counter")
	script := filepath.Join(dir, "stub.sh")
	body := fmt.Sprintf(`#!/bin/sh
exp=""; out=""; steps=0
while [ $# -gt 0 ]; do
  case "$1" in
    -exp) exp=$2; shift 2;;
    -outdir) out=$2; shift 2;;
    -steps) steps=$2; shift 2;;
    *) shift;;
  esac
done
c=$(cat %q 2>/dev/null || echo 0)
c=$((c+1))
echo $c > %q
cat > "$out/BENCH_$exp.json" <<EOF
{"experiment":"$exp","graph":"YT","steps":$steps,"ns_per_step":$((100+c))}
EOF
`, counter, counter)
	if err := os.WriteFile(script, []byte(body), 0o755); err != nil {
		t.Fatal(err)
	}
	return script
}

func TestRunnerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	script := stubHarness(t, dir)
	m := &Manifest{SchemaVersion: 1, Repeats: 2}
	e := Experiment{Name: "toy", Grid: map[string][]string{"steps": {"4", "8"}}}

	r := &Runner{BenchCmd: []string{"/bin/sh", script}}
	rep, err := r.RunExperiment(m, e)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Experiment != "toy" || rep.Repeats != 2 || len(rep.Cells) != 2 {
		t.Fatalf("report shape: exp=%q repeats=%d cells=%d", rep.Experiment, rep.Repeats, len(rep.Cells))
	}
	if rep.SchemaVersion != ReportSchemaVersion {
		t.Errorf("schema_version = %d, want %d", rep.SchemaVersion, ReportSchemaVersion)
	}
	// Invocations 1,2 hit cell steps=4; invocations 3,4 hit steps=8.
	c0 := rep.Cells[0]
	if c0.Label() != "steps=4" {
		t.Fatalf("first cell %q", c0.Label())
	}
	s := c0.Metrics["ns_per_step"]
	almost(t, s.Mean, 101.5, 1e-9, "cell0 folded mean")
	almost(t, s.Std, 0.5, 1e-9, "cell0 folded std")
	if s.N != 2 {
		t.Errorf("cell0 n = %d", s.N)
	}
	almost(t, rep.Cells[1].Metrics["ns_per_step"].Mean, 103.5, 1e-9, "cell1 folded mean")
	// The -steps grid flag reached the harness and round-tripped.
	almost(t, rep.Cells[1].Metrics["steps"].Mean, 8, 0, "steps flag")
	if g := c0.Config["graph"]; g != "YT" {
		t.Errorf("config graph = %q", g)
	}
}

func TestRunnerHarnessFailure(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "fail.sh")
	if err := os.WriteFile(script, []byte("#!/bin/sh\necho boom-diagnostic\nexit 3\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	r := &Runner{BenchCmd: []string{"/bin/sh", script}}
	_, err := r.RunExperiment(&Manifest{SchemaVersion: 1}, Experiment{Name: "toy"})
	if err == nil {
		t.Fatal("failing harness must error")
	}
	if !strings.Contains(err.Error(), "boom-diagnostic") {
		t.Errorf("error does not carry the harness output tail: %v", err)
	}
}

func TestRunnerMissingOutput(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "noop.sh")
	if err := os.WriteFile(script, []byte("#!/bin/sh\nexit 0\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	r := &Runner{BenchCmd: []string{"/bin/sh", script}}
	_, err := r.RunExperiment(&Manifest{SchemaVersion: 1}, Experiment{Name: "toy"})
	if err == nil || !strings.Contains(err.Error(), "BENCH_toy.json") {
		t.Fatalf("missing output file must name the file: %v", err)
	}
}

func TestGridReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rep := report("toy", ReportSchemaVersion, map[string]Stat{
		"ns_per_step": {Mean: 100, Std: 2, Min: 98, Max: 102, N: 3},
	})
	path := filepath.Join(dir, "sub", "BENCH_toy.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGridReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Experiment != "toy" || len(got.Cells) != 1 {
		t.Fatalf("round trip lost shape: %+v", got)
	}
	almost(t, got.Cells[0].Metrics["ns_per_step"].Std, 2, 0, "std after round trip")

	// A non-grid JSON file (e.g. a raw fmbench report committed by
	// mistake) must be rejected, not silently treated as empty.
	raw := filepath.Join(dir, "raw.json")
	os.WriteFile(raw, []byte(`{"experiment_typo":"x"}`), 0o644)
	if _, err := ReadGridReport(raw); err == nil {
		t.Error("non-grid JSON accepted as a baseline")
	}
}

// TestGateDoctoredBaseline is the acceptance scenario: run the grid
// against a committed baseline whose numbers were doctored to be
// better than reality, and require the gate to fail.
func TestGateDoctoredBaseline(t *testing.T) {
	dir := t.TempDir()
	script := stubHarness(t, dir)
	m := &Manifest{SchemaVersion: 1, Repeats: 2,
		Gate: GateConfig{Sigma: 3, RelFloor: 0.01, AbsFloor: 1e-9}}
	e := Experiment{Name: "toy"}

	r := &Runner{BenchCmd: []string{"/bin/sh", script}}
	fresh, err := r.RunExperiment(m, e)
	if err != nil {
		t.Fatal(err)
	}

	// Doctor a baseline claiming ns_per_step used to be 50 with almost
	// no variance; the stub's ~101 must blow through the band.
	doctored := &GridReport{
		Meta:       Meta{SchemaVersion: ReportSchemaVersion, GitSHA: "doctored"},
		Experiment: "toy",
		Repeats:    2,
		Cells: []*CellResult{{
			Repeats: 2,
			Config:  fresh.Cells[0].Config,
			Metrics: map[string]Stat{
				"ns_per_step": {Mean: 50, Std: 0.1, Min: 49.9, Max: 50.1, N: 2},
				"steps":       fresh.Cells[0].Metrics["steps"],
			},
		}},
	}
	basePath := filepath.Join(dir, "baseline", "BENCH_toy.json")
	if err := doctored.WriteFile(basePath); err != nil {
		t.Fatal(err)
	}
	base, err := ReadGridReport(basePath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compare(base, fresh, m.Gate)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions() == 0 {
		t.Fatal("doctored baseline must trip the gate")
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "REGRESSED") {
		t.Errorf("render output lacks REGRESSED verdict:\n%s", sb.String())
	}
}

func TestWriteCSVAndMarkdown(t *testing.T) {
	rep := report("toy", ReportSchemaVersion, map[string]Stat{
		"ns_per_step":  {Mean: 100, Std: 2, Min: 98, Max: 102, N: 3},
		"speedup_vs_x": {Mean: 1.5, Std: 0.1, Min: 1.4, Max: 1.6, N: 3},
		"offered_qps":  {Mean: 10, N: 3},
	})
	var csv strings.Builder
	if err := WriteCSV(&csv, []*GridReport{rep}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "experiment,cell,metric,mean,std,min,max,n\n") {
		t.Errorf("csv header: %q", strings.SplitN(csv.String(), "\n", 2)[0])
	}
	if !strings.Contains(csv.String(), "toy,default,ns_per_step,100,2,98,102,3") {
		t.Errorf("csv row missing:\n%s", csv.String())
	}
	var md strings.Builder
	if err := WriteMarkdown(&md, []*GridReport{rep}, GateConfig{}); err != nil {
		t.Fatal(err)
	}
	out := md.String()
	if !strings.Contains(out, "ns_per_step") || !strings.Contains(out, "speedup_vs_x") {
		t.Errorf("markdown missing gated metrics:\n%s", out)
	}
	if strings.Contains(out, "offered_qps") {
		t.Errorf("markdown should only list gated metrics:\n%s", out)
	}
}
