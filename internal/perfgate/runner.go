package perfgate

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"time"
)

// Runner shells into the benchmark harness once per (cell, repeat) and
// folds the raw reports into aggregated GridReports.
type Runner struct {
	// BenchCmd is the argv prefix of the harness, e.g.
	// ["go", "run", "./cmd/fmbench"] or ["/path/to/fmbench"]. The runner
	// appends "-exp <name> -outdir <tmpdir>" plus the cell's flags.
	BenchCmd []string
	// Dir is the working directory for harness invocations (the repo
	// root; "" means inherit).
	Dir string
	// Log receives progress lines (nil silences them).
	Log io.Writer
	// Verbose additionally streams the harness's own stdout/stderr to
	// Log instead of buffering it for error reporting only.
	Verbose bool
}

// logf writes one progress line when logging is enabled.
func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		fmt.Fprintf(r.Log, format+"\n", args...)
	}
}

// RunExperiment executes one experiment's full grid — every cell,
// repeated — and returns the aggregated, provenance-stamped report.
func (r *Runner) RunExperiment(m *Manifest, e Experiment) (*GridReport, error) {
	if len(r.BenchCmd) == 0 {
		return nil, fmt.Errorf("runner: no bench command configured")
	}
	repeats := e.RepeatsOrDefault(m)
	rep := &GridReport{
		Meta:       NewMeta(),
		Experiment: e.Name,
		Repeats:    repeats,
	}
	cells := e.Cells()
	for ci, cell := range cells {
		runs := make([]*Run, 0, repeats)
		for ri := 0; ri < repeats; ri++ {
			t0 := time.Now()
			run, err := r.runOnce(e, cell)
			if err != nil {
				return nil, fmt.Errorf("%s cell %s repeat %d: %w", e.Name, cell.Label(), ri+1, err)
			}
			r.logf("grid %s: cell %d/%d (%s) repeat %d/%d done in %.1fs (%d metrics)",
				e.Name, ci+1, len(cells), cell.Label(), ri+1, repeats,
				time.Since(t0).Seconds(), len(run.Metrics))
			runs = append(runs, run)
		}
		folded, err := FoldRuns(cell, runs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name, err)
		}
		rep.Cells = append(rep.Cells, folded)
	}
	return rep, nil
}

// runOnce executes the harness for one cell and flattens the BENCH file
// it wrote.
func (r *Runner) runOnce(e Experiment, cell Cell) (*Run, error) {
	tmp, err := os.MkdirTemp("", "fmgrid-"+e.Name)
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	args := append([]string{}, r.BenchCmd[1:]...)
	args = append(args, "-exp", e.Name, "-outdir", tmp)
	flags := make([]string, 0, len(cell.Params))
	for f := range cell.Params {
		flags = append(flags, f)
	}
	sort.Strings(flags)
	for _, f := range flags {
		args = append(args, "-"+f, cell.Params[f])
	}

	cmd := exec.Command(r.BenchCmd[0], args...)
	cmd.Dir = r.Dir
	var sink io.Writer = io.Discard
	if r.Verbose && r.Log != nil {
		sink = r.Log
	}
	tail := &tailBuffer{max: 4096}
	cmd.Stdout = io.MultiWriter(sink, tail)
	cmd.Stderr = cmd.Stdout
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("harness failed: %w\n--- harness output tail ---\n%s", err, tail.String())
	}

	data, err := os.ReadFile(filepath.Join(tmp, e.OutputFile()))
	if err != nil {
		return nil, fmt.Errorf("harness wrote no %s: %w", e.OutputFile(), err)
	}
	return FlattenJSON(data)
}

// tailBuffer keeps the last max bytes written to it, so a failing
// harness run can show its final output without buffering megabytes.
type tailBuffer struct {
	max int
	buf []byte
}

// Write appends p, trimming the front past the cap.
func (t *tailBuffer) Write(p []byte) (int, error) {
	t.buf = append(t.buf, p...)
	if len(t.buf) > t.max {
		t.buf = t.buf[len(t.buf)-t.max:]
	}
	return len(p), nil
}

// String returns the retained tail.
func (t *tailBuffer) String() string { return string(t.buf) }
