package ooc

import (
	"fmt"
	"time"

	"flashmob/internal/graph"
	"flashmob/internal/rng"
)

// NaiveDisk walks a disk-resident graph the way a direct out-of-core
// adaptation of walker-at-a-time engines would (DrunkardMob-style): each
// step issues one random positioned read for the sampled edge. It exists
// as the baseline the streaming engine is compared against — random disk
// reads of 4 bytes each versus large sequential block streams.
func NaiveDisk(gf *graph.File, walkers uint64, steps int, seed uint64) (*Result, error) {
	if gf == nil {
		return nil, fmt.Errorf("ooc: nil graph file")
	}
	if steps <= 0 {
		return nil, fmt.Errorf("ooc: steps must be positive")
	}
	if walkers == 0 {
		walkers = uint64(gf.NumVertices())
	}
	src := rng.NewXorShift1024Star(seed)
	n := gf.NumVertices()
	res := &Result{Walkers: walkers, Steps: steps, TotalSteps: walkers * uint64(steps)}
	one := make([]graph.VID, 1)
	start := time.Now()
	for j := uint64(0); j < walkers; j++ {
		v := graph.VID(uint32(j) % n)
		for s := 0; s < steps; s++ {
			d := gf.Degree(v)
			if d == 0 {
				continue
			}
			idx := gf.Offsets[v] + uint64(rng.Uint32n(src, d))
			if err := gf.ReadTargets(idx, idx+1, one); err != nil {
				return nil, err
			}
			res.BytesRead += graph.VIDBytes
			v = one[0]
		}
	}
	res.Duration = time.Since(start)
	return res, nil
}
