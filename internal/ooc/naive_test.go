package ooc

import (
	"context"
	"testing"
)

func TestNaiveDiskWalks(t *testing.T) {
	gf, g := writeGraph(t, 400, 20)
	res, err := NaiveDisk(gf, 200, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSteps != 1000 {
		t.Fatalf("TotalSteps = %d", res.TotalSteps)
	}
	// One 4-byte read per non-dead-end step.
	if res.BytesRead == 0 || res.BytesRead > 4*res.TotalSteps {
		t.Errorf("BytesRead = %d for %d steps", res.BytesRead, res.TotalSteps)
	}
	_ = g
}

func TestNaiveDiskErrors(t *testing.T) {
	if _, err := NaiveDisk(nil, 1, 1, 1); err == nil {
		t.Error("nil file accepted")
	}
	gf, _ := writeGraph(t, 100, 21)
	if _, err := NaiveDisk(gf, 1, 0, 1); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestStreamingBeatsNaiveDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short")
	}
	// At identical workloads, block streaming must beat one-pread-per-step
	// random I/O. (Both hit the page cache here; the syscall-per-step
	// overhead alone decides it, and real disks widen the gap further.)
	gf, _ := writeGraph(t, 3000, 22)
	walkers, steps := uint64(4000), 6

	naive, err := NaiveDisk(gf, walkers, steps, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(gf, Config{BlockBudget: 64 << 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	stream, err := e.Run(context.Background(), walkers, steps)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("naive %.0f ns/step vs streaming %.0f ns/step", naive.PerStepNS(), stream.PerStepNS())
	if stream.PerStepNS() >= naive.PerStepNS() {
		t.Errorf("streaming (%.0f ns/step) not faster than naive random I/O (%.0f ns/step)",
			stream.PerStepNS(), naive.PerStepNS())
	}
}
