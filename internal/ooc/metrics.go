package ooc

import "flashmob/internal/obs"

// oocMetrics is the out-of-core engine's observability state, built once
// per engine when Config.Metrics is set; a nil *oocMetrics disables every
// recording site. The streaming loop records per block, never per walker.
type oocMetrics struct {
	reg *obs.Registry

	runs, steps   *obs.Counter
	blocks, bytes *obs.Counter
	skipped       *obs.Counter
	ioWaitNS      *obs.Counter
	ioReadNS      *obs.Counter

	// Resident-tier accounting: pinned-block sample passes vs. streamed
	// blocks, bytes saved, and the pin set's size (set once at New).
	residentHits   *obs.Counter
	residentMisses *obs.Counter
	residentSaved  *obs.Counter
	residentBytes  *obs.Gauge
	residentParts  *obs.Gauge

	// Per-block distributions: streamed block size, in-memory sample
	// time over the block's walkers, and prefetch-ring occupancy at the
	// moment each block is consumed.
	blockBytes    *obs.Histogram
	blockSampleNS *obs.Histogram
	prefetchReady *obs.Histogram
}

// newOOCMetrics builds the engine's metric set.
func newOOCMetrics() *oocMetrics {
	reg := obs.NewRegistry()
	return &oocMetrics{
		reg: reg,
		runs: reg.Counter(obs.Desc{
			Name: "ooc_runs_total", Unit: "count", Stage: "run",
			Help: "Engine.Run invocations",
		}),
		steps: reg.Counter(obs.Desc{
			Name: "ooc_steps_total", Unit: "count", Stage: "run",
			Help: "pipeline steps executed",
		}),
		blocks: reg.Counter(obs.Desc{
			Name: "ooc_blocks_read_total", Unit: "count", Stage: "stream",
			Help: "coalesced IO runs streamed from disk (adjacent partition blocks merge into one pread)",
		}),
		bytes: reg.Counter(obs.Desc{
			Name: "ooc_bytes_read_total", Unit: "bytes", Stage: "stream",
			Help: "edge-block bytes streamed from disk",
		}),
		skipped: reg.Counter(obs.Desc{
			Name: "ooc_blocks_skipped_total", Unit: "count", Stage: "stream",
			Help: "partition blocks skipped because no walker landed there this step",
		}),
		ioWaitNS: reg.Counter(obs.Desc{
			Name: "ooc_io_wait_ns", Unit: "ns", Stage: "stream",
			Help: "time the sample loop spent blocked on disk reads, after prefetch overlap",
		}),
		ioReadNS: reg.Counter(obs.Desc{
			Name: "ooc_io_read_ns", Unit: "ns", Stage: "stream",
			Help: "time spent inside block preads across IO workers (the raw IO cost prefetch overlaps)",
		}),
		residentHits: reg.Counter(obs.Desc{
			Name: "ooc_resident_hits_total", Unit: "count", Stage: "resident",
			Help: "partition visits served from the pinned resident tier (no disk read)",
		}),
		residentMisses: reg.Counter(obs.Desc{
			Name: "ooc_resident_misses_total", Unit: "count", Stage: "resident",
			Help: "partition visits not in the resident tier (block streamed from disk)",
		}),
		residentSaved: reg.Counter(obs.Desc{
			Name: "ooc_resident_saved_bytes_total", Unit: "bytes", Stage: "resident",
			Help: "edge-block bytes not streamed because the partition was pinned",
		}),
		residentBytes: reg.Gauge(obs.Desc{
			Name: "ooc_resident_bytes", Unit: "bytes", Stage: "resident",
			Help: "DRAM pinned by the resident tier (set at New)",
		}),
		residentParts: reg.Gauge(obs.Desc{
			Name: "ooc_resident_partitions", Unit: "count", Stage: "resident",
			Help: "partitions pinned by the storage-tier knapsack (set at New)",
		}),
		blockBytes: reg.Histogram(obs.Desc{
			Name: "ooc_block_bytes", Unit: "bytes", Stage: "stream",
			Help: "bytes per streamed IO run (one pread)",
		}),
		blockSampleNS: reg.Histogram(obs.Desc{
			Name: "ooc_block_sample_ns", Unit: "ns", Stage: "sample",
			Help: "in-memory sample time per streamed IO run",
		}),
		prefetchReady: reg.Histogram(obs.Desc{
			Name: "ooc_prefetch_ready", Unit: "count", Stage: "stream",
			Help: "blocks already loaded and waiting (ring occupancy, incl. the one being consumed) when the sample loop takes a block; pinned at 1 when depth=1, approaches the ring depth when IO keeps ahead",
		}),
	}
}

// MetricsReport snapshots the engine's metrics registry, accumulated
// across every Run since the engine was built. Returns nil when the
// engine was created without Config.Metrics.
func (e *Engine) MetricsReport() *obs.Report {
	if e.metrics == nil {
		return nil
	}
	return e.metrics.reg.Snapshot()
}
