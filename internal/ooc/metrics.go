package ooc

import "flashmob/internal/obs"

// oocMetrics is the out-of-core engine's observability state, built once
// per engine when Config.Metrics is set; a nil *oocMetrics disables every
// recording site. The streaming loop records per block, never per walker.
type oocMetrics struct {
	reg *obs.Registry

	runs, steps   *obs.Counter
	blocks, bytes *obs.Counter
	skipped       *obs.Counter
	ioWaitNS      *obs.Counter

	// Per-block distributions: streamed block size and in-memory sample
	// time over the block's walkers.
	blockBytes    *obs.Histogram
	blockSampleNS *obs.Histogram
}

// newOOCMetrics builds the engine's metric set.
func newOOCMetrics() *oocMetrics {
	reg := obs.NewRegistry()
	return &oocMetrics{
		reg: reg,
		runs: reg.Counter(obs.Desc{
			Name: "ooc_runs_total", Unit: "count", Stage: "run",
			Help: "Engine.Run invocations",
		}),
		steps: reg.Counter(obs.Desc{
			Name: "ooc_steps_total", Unit: "count", Stage: "run",
			Help: "pipeline steps executed",
		}),
		blocks: reg.Counter(obs.Desc{
			Name: "ooc_blocks_read_total", Unit: "count", Stage: "stream",
			Help: "partition edge blocks streamed from disk",
		}),
		bytes: reg.Counter(obs.Desc{
			Name: "ooc_bytes_read_total", Unit: "bytes", Stage: "stream",
			Help: "edge-block bytes streamed from disk",
		}),
		skipped: reg.Counter(obs.Desc{
			Name: "ooc_blocks_skipped_total", Unit: "count", Stage: "stream",
			Help: "partition blocks skipped because no walker landed there this step",
		}),
		ioWaitNS: reg.Counter(obs.Desc{
			Name: "ooc_io_wait_ns", Unit: "ns", Stage: "stream",
			Help: "time the sample loop spent blocked on disk reads, after prefetch overlap",
		}),
		blockBytes: reg.Histogram(obs.Desc{
			Name: "ooc_block_bytes", Unit: "bytes", Stage: "stream",
			Help: "streamed edge-block size per read",
		}),
		blockSampleNS: reg.Histogram(obs.Desc{
			Name: "ooc_block_sample_ns", Unit: "ns", Stage: "sample",
			Help: "in-memory sample time per streamed block",
		}),
	}
}

// MetricsReport snapshots the engine's metrics registry, accumulated
// across every Run since the engine was built. Returns nil when the
// engine was created without Config.Metrics.
func (e *Engine) MetricsReport() *obs.Report {
	if e.metrics == nil {
		return nil
	}
	return e.metrics.reg.Snapshot()
}
