package ooc

import (
	"context"
	"runtime"
	"testing"
	"time"

	"flashmob/internal/algo"
	"flashmob/internal/core"
	"flashmob/internal/graph"
)

// coreHistory runs the in-memory engine on the ooc engine's exact plan and
// seed and returns its recorded trajectories.
func coreHistory(t *testing.T, g *graph.CSR, e *Engine, seed uint64, walkers uint64, steps int) *core.Result {
	t.Helper()
	ce, err := core.New(g, algo.DeepWalk(), core.Config{
		Workers: 2, Seed: seed, Plan: e.Plan(), RecordHistory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ce.Close()
	res, err := ce.Run(walkers, steps)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// diffHistories fails the test at the first diverging (step, walker) cell.
func diffHistories(t *testing.T, label string, got, want interface {
	NumSteps() int
	NumWalkers() int
	At(i, j int) graph.VID
}) {
	t.Helper()
	if got.NumSteps() != want.NumSteps() || got.NumWalkers() != want.NumWalkers() {
		t.Fatalf("%s: history shape (%d steps × %d walkers) != (%d × %d)",
			label, got.NumSteps(), got.NumWalkers(), want.NumSteps(), want.NumWalkers())
	}
	for i := 0; i < got.NumSteps(); i++ {
		for j := 0; j < got.NumWalkers(); j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("%s: first divergence at step %d walker %d: ooc %d, core %d",
					label, i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

// TestOOCMatchesInMemoryEngine pins the tentpole's determinism claim: for
// every prefetch depth / IO worker / sample worker / resident-budget
// setting, ooc trajectories are bitwise-identical to internal/core running
// the same plan and seed — the ooc analogue of
// core.TestConcurrentRunsMatchSerial. Run under -race in CI.
func TestOOCMatchesInMemoryEngine(t *testing.T) {
	gf, g := writeGraph(t, 3000, 31)
	const seed, walkers, steps = 97, uint64(2500), 8
	cases := []struct {
		name string
		cfg  Config
	}{
		{"depth1-serial", Config{PrefetchDepth: 1, IOWorkers: 1, Workers: 1}},
		{"depth2-serial", Config{PrefetchDepth: 2, IOWorkers: 1, Workers: 1}},
		{"depth4-io2-workers4", Config{PrefetchDepth: 4, IOWorkers: 2, Workers: 4}},
		{"depth8-io4-workers2", Config{PrefetchDepth: 8, IOWorkers: 4, Workers: 2}},
		{"depth4-resident", Config{PrefetchDepth: 4, IOWorkers: 2, Workers: 4,
			ResidentBudget: 1 << 20}},
		{"depth4-all-resident", Config{PrefetchDepth: 4, IOWorkers: 2, Workers: 4,
			ResidentBudget: 1 << 40}},
	}
	var ref *core.Result
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.BlockBudget = 32 << 10
			cfg.Seed = seed
			cfg.RecordHistory = true
			e, err := New(gf, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			res, err := e.Run(context.Background(), walkers, steps)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = coreHistory(t, g, e, seed, walkers, steps)
			}
			diffHistories(t, tc.name, res.History, ref.History)
		})
	}
}

// TestOOCMatchesCoreWithSubShards forces the sub-shard path (chunks cut at
// core.SubShardSize boundaries with per-sub-shard seeds) and checks the
// cut discipline still matches the in-memory engine bit for bit.
func TestOOCMatchesCoreWithSubShards(t *testing.T) {
	old := core.SubShardSize
	core.SubShardSize = 256
	defer func() { core.SubShardSize = old }()

	gf, g := writeGraph(t, 1500, 33)
	const seed, walkers, steps = 41, uint64(4000), 6
	e, err := New(gf, Config{
		BlockBudget: 1 << 20, Seed: seed, RecordHistory: true,
		PrefetchDepth: 4, IOWorkers: 2, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res, err := e.Run(context.Background(), walkers, steps)
	if err != nil {
		t.Fatal(err)
	}
	ref := coreHistory(t, g, e, seed, walkers, steps)
	diffHistories(t, "subshards", res.History, ref.History)
}

// TestOOCRingOrderedDeliveryStress hammers the prefetch ring with many
// more jobs than ring slots across repeated runs. This is the regression
// test for the token-steal race: with a dynamic job claim, a worker
// holding job i+depth could take slot (i%depth)'s token before the worker
// holding job i, delivering blocks out of order — the consumer then pairs
// job i's walker chunk with a wrong-sized buffer (corruption, or a panic
// that deadlocked the old defer ordering). Static slot ownership makes
// delivery ordered; the consumer's load.job assertion and the bitwise
// check against core would both catch a recurrence.
func TestOOCRingOrderedDeliveryStress(t *testing.T) {
	gf, g := writeGraph(t, 4000, 43)
	const seed, walkers, steps = 7, uint64(3000), 6
	e, err := New(gf, Config{
		// A tiny block budget maximizes jobs per step (many partitions),
		// so every step laps the ring many times per slot.
		BlockBudget: 8 << 10, Seed: seed, RecordHistory: true,
		PrefetchDepth: 4, IOWorkers: 4, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if nvp := e.Plan().NumVPs(); nvp < 16 {
		t.Fatalf("want many streaming partitions to lap the ring, got %d", nvp)
	}
	var ref *core.Result
	for rep := 0; rep < 10; rep++ {
		res, err := e.Run(context.Background(), walkers, steps)
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		if ref == nil {
			ref = coreHistory(t, g, e, seed, walkers, steps)
		}
		diffHistories(t, "ring-stress", res.History, ref.History)
	}
}

// waitGoroutines polls until the goroutine count drops back to at most
// base (with slack for runtime background goroutines) or the deadline
// passes, returning the final count.
func waitGoroutines(base int) int {
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base || time.Now().After(deadline) {
			return n
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestOOCRunCancellation covers the context satellite: a canceled context
// stops the run promptly, reports ctx.Err(), and leaves no prefetch or
// pool goroutine behind.
func TestOOCRunCancellation(t *testing.T) {
	gf, _ := writeGraph(t, 2000, 35)
	base := runtime.NumGoroutine()

	e, err := New(gf, Config{
		BlockBudget: 16 << 10, Seed: 3,
		PrefetchDepth: 4, IOWorkers: 2, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-canceled context: the run must not start stepping.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Run(ctx, 1000, 10); err != context.Canceled {
		t.Fatalf("pre-canceled run: err = %v, want context.Canceled", err)
	}

	// Mid-run cancellation: a run far too long to finish must stop once
	// the context fires, from inside the streaming loop.
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.Run(ctx2, 2000, 1<<30)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel2()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("mid-run cancellation: err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled run did not return within 10s")
	}

	e.Close()
	if n := waitGoroutines(base); n > base {
		t.Fatalf("goroutine leak: %d before, %d after cancel+Close", base, n)
	}
}

// TestOOCResidentTier checks the storage-tier knapsack end to end: pinned
// partitions stop being streamed, a full budget eliminates disk traffic
// entirely, and the resident metrics account for it.
func TestOOCResidentTier(t *testing.T) {
	gf, _ := writeGraph(t, 2000, 37)
	const seed, walkers, steps = 11, uint64(3000), 6

	run := func(budget uint64) *Result {
		t.Helper()
		e, err := New(gf, Config{
			BlockBudget: 16 << 10, Seed: seed, ResidentBudget: budget,
			PrefetchDepth: 4, IOWorkers: 2, Workers: 2, Metrics: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		res, err := e.Run(context.Background(), walkers, steps)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	cold := run(0)
	if cold.ResidentHits != 0 || cold.Blocks == 0 {
		t.Fatalf("no-tier run: hits=%d blocks=%d", cold.ResidentHits, cold.Blocks)
	}

	partial := run(cold.BytesRead / uint64(steps) / 4) // ~25% of one step's volume
	if partial.ResidentHits == 0 {
		t.Fatal("partial budget pinned nothing")
	}
	if partial.BytesRead >= cold.BytesRead {
		t.Fatalf("resident tier did not reduce streaming: %d >= %d", partial.BytesRead, cold.BytesRead)
	}
	if hit, ok := partial.Report.Counter("ooc_resident_hits_total"); !ok || hit.Value != partial.ResidentHits {
		t.Fatalf("ooc_resident_hits_total = %+v, want %d", hit, partial.ResidentHits)
	}
	if saved, ok := partial.Report.Counter("ooc_resident_saved_bytes_total"); !ok || saved.Value == 0 {
		t.Fatal("ooc_resident_saved_bytes_total missing or zero")
	}
	if gb, ok := partial.Report.Gauge("ooc_resident_bytes"); !ok || gb.Value <= 0 {
		t.Fatal("ooc_resident_bytes gauge missing or zero")
	}

	full := run(1 << 40)
	if full.Blocks != 0 || full.BytesRead != 0 {
		t.Fatalf("full budget still streamed %d blocks / %d bytes", full.Blocks, full.BytesRead)
	}
	if full.ResidentHits == 0 {
		t.Fatal("full budget recorded no resident hits")
	}
}

// TestOOCPrefetchMetrics checks the pipeline's observability: ring
// occupancy observed per consumed block, raw pread time accounted, and
// depth-1 occupancy pinned at exactly 1.
func TestOOCPrefetchMetrics(t *testing.T) {
	gf, _ := writeGraph(t, 2000, 39)
	run := func(depth int) *Result {
		t.Helper()
		e, err := New(gf, Config{
			BlockBudget: 16 << 10, Seed: 5, Metrics: true,
			PrefetchDepth: depth, IOWorkers: 2, Workers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		res, err := e.Run(context.Background(), 3000, 5)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(4)
	occ, ok := res.Report.Histogram("ooc_prefetch_ready")
	if !ok || occ.Count != res.Blocks {
		t.Fatalf("ooc_prefetch_ready count = %+v, want one observation per block (%d)", occ, res.Blocks)
	}
	if rd, ok := res.Report.Counter("ooc_io_read_ns"); !ok || rd.Value == 0 {
		t.Fatal("ooc_io_read_ns missing or zero")
	}

	single := run(1)
	occ1, ok := single.Report.Histogram("ooc_prefetch_ready")
	if !ok || occ1.Count == 0 {
		t.Fatal("depth-1 run recorded no occupancy")
	}
	if occ1.Sum != occ1.Count {
		t.Fatalf("depth-1 occupancy must be exactly 1 per block: sum=%d count=%d", occ1.Sum, occ1.Count)
	}
}
