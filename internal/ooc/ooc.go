// Package ooc implements out-of-core random walks on disk-resident
// graphs — the extension the paper plans as future work (§4.5, §7): since
// FlashMob's sample stage consumes each vertex partition's edges as one
// sequential block, the graph can stream from disk through a small DRAM
// window while the (much smaller) walker arrays stay memory-resident. The
// paper estimates a full 80-step DeepWalk needs ~5GB/s of streaming
// bandwidth, within commodity NVMe range.
//
// The engine is overlap-first: an N-deep asynchronous prefetch ring of
// pooled block buffers keeps IOWorkers reads in flight ahead of the
// consumer with ordered delivery, each delivered block is sampled in
// parallel on the engine's worker pool using the in-memory engine's exact
// per-(step, partition, sub-shard) seed schedule (trajectories are
// worker-count- and depth-independent, and bitwise-identical to
// internal/core on the same plan), and a resident tier pins the
// hottest partition blocks in DRAM — a storage-level MCKP solved with
// profile.PlanResident — so they are never re-read.
//
// The engine processes direct-sampling partitions only: pre-sampling's
// per-vertex buffers are themselves edge-sized and would defeat the
// purpose on a disk-resident graph.
package ooc

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"flashmob/internal/core"
	"flashmob/internal/graph"
	"flashmob/internal/obs"
	"flashmob/internal/part"
	"flashmob/internal/pool"
	"flashmob/internal/profile"
	"flashmob/internal/rng"
	"flashmob/internal/walk"
)

// DefaultPrefetchDepth is the prefetch ring size when Config.PrefetchDepth
// is unset: enough lookahead to hide one block's latency behind sampling
// plus slack for jitter, without multiplying the buffer footprint much.
const DefaultPrefetchDepth = 4

// Config tunes the out-of-core engine.
type Config struct {
	// BlockBudget sizes the streamed partitions: every partition's edge
	// block must fit half of it (the footprint of the classic
	// double-buffered window, kept as the partitioning rule so plans — and
	// therefore trajectories — do not change with PrefetchDepth). The
	// prefetch ring holds up to PrefetchDepth such blocks. Default 64 MiB.
	BlockBudget uint64
	// Seed drives sampling.
	Seed uint64
	// Workers is the engine's worker-pool size, parallelizing both block
	// sampling and the shuffle stages. Trajectories do not depend on it.
	Workers int
	// PrefetchDepth is the number of block buffers in the prefetch ring —
	// how many reads may be in flight or parked ahead of the consumer.
	// 1 disables overlap entirely (the synchronous baseline); default
	// DefaultPrefetchDepth.
	PrefetchDepth int
	// IOWorkers is the number of goroutines issuing block reads ahead of
	// the consumer. Clamped to PrefetchDepth; default min(2, depth).
	IOWorkers int
	// ResidentBudget is the DRAM allowance, in bytes, for pinning hot
	// partition blocks so they are never re-read (0 disables the tier).
	// The pin set is chosen at New by a storage-level knapsack
	// (profile.PlanResident) valuing each block by its expected stream-in
	// time saved per step.
	ResidentBudget uint64
	// Storage prices block reads for the resident-tier knapsack; the zero
	// value means profile.DefaultSSD().
	Storage profile.StorageParams
	// ColdCache evicts the graph file's page cache (best-effort,
	// graph.File.DropCache) before every step, modeling the steady state
	// of a graph far larger than RAM where no block survives in cache
	// between steps. Benchmarks use it: a just-written file is
	// page-cache-hot and its warm "reads" are memcpys that neither block
	// nor overlap. Trajectories are unaffected.
	ColdCache bool
	// RecordHistory keeps the W_i arrays (for tests; memory heavy).
	RecordHistory bool
	// Metrics enables the observability layer: streaming and sampling
	// counters accumulated on a registry and snapshotted into
	// Result.Report. Off by default (see docs/OBSERVABILITY.md).
	Metrics bool
}

// Result reports an out-of-core run.
type Result struct {
	// Walkers is the number of walkers advanced.
	Walkers uint64
	// Steps is the number of pipeline steps taken.
	Steps int
	// TotalSteps is Walkers × Steps.
	TotalSteps uint64
	// Duration is the wall time of the run.
	Duration time.Duration
	// BytesRead is the total edge-block volume streamed from disk.
	BytesRead uint64
	// Blocks is the number of partition blocks streamed from disk.
	Blocks uint64
	// ResidentHits counts partition visits served from the pinned
	// resident tier instead of a disk read.
	ResidentHits uint64
	// IOWait is time the consumer spent blocked waiting for block
	// delivery (after overlap with sampling via the prefetch ring).
	IOWait time.Duration
	// History holds recorded W_i arrays when requested.
	History *walk.History
	// Report is the metrics snapshot of this run (nil unless
	// Config.Metrics; see docs/OBSERVABILITY.md for the field reference).
	Report *obs.Report
}

// PerStepNS returns wall nanoseconds per walker-step.
func (r *Result) PerStepNS() float64 {
	if r.TotalSteps == 0 {
		return 0
	}
	return float64(r.Duration.Nanoseconds()) / float64(r.TotalSteps)
}

// StreamBandwidth returns the effective disk streaming rate in bytes/sec.
func (r *Result) StreamBandwidth() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.BytesRead) / r.Duration.Seconds()
}

// Engine walks a disk-resident graph. Build one with New, run walks with
// Run (one at a time; an Engine is not safe for concurrent Runs), release
// its worker pool with Close.
type Engine struct {
	gf   *graph.File
	plan *part.Plan
	cfg  Config
	// ringCap is the capacity of each prefetch ring buffer, in edge
	// entries. It doubles as the coalescing cap: adjacent streamed
	// partitions merge into one IO run until the run would outgrow a
	// ring buffer. Half the block budget (double-buffer rule), clamped
	// to what streaming can actually need.
	ringCap uint64
	// pool runs block sampling and the shuffle stages.
	pool *pool.Pool
	// scratch holds one reseedable sample RNG per pool worker.
	scratch []*rng.XorShift1024Star
	// resident holds the pinned edge block of each partition chosen by the
	// storage-tier knapsack (nil entry = streamed).
	resident [][]graph.VID
	// residentBytes is the DRAM spent on pinned blocks.
	residentBytes uint64
	// residentCount is the number of pinned partitions.
	residentCount int
	// metrics is the observability state (nil unless Config.Metrics).
	metrics *oocMetrics
}

// New prepares an engine over an opened graph file. The partition plan is
// derived from the block budget: uniform power-of-2 DS partitions, each
// small enough that its edge block fits half the budget. When
// cfg.ResidentBudget is nonzero the hottest blocks are loaded into DRAM
// now and pinned for the engine's lifetime.
func New(gf *graph.File, cfg Config) (*Engine, error) {
	if gf == nil {
		return nil, fmt.Errorf("ooc: nil graph file")
	}
	if cfg.BlockBudget == 0 {
		cfg.BlockBudget = 64 << 20
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.PrefetchDepth <= 0 {
		cfg.PrefetchDepth = DefaultPrefetchDepth
	}
	if cfg.IOWorkers <= 0 {
		cfg.IOWorkers = 2
		if cfg.IOWorkers > cfg.PrefetchDepth {
			cfg.IOWorkers = cfg.PrefetchDepth
		}
	}
	if cfg.IOWorkers > cfg.PrefetchDepth {
		cfg.IOWorkers = cfg.PrefetchDepth
	}
	if (cfg.Storage == profile.StorageParams{}) {
		cfg.Storage = profile.DefaultSSD()
	}
	n := gf.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("ooc: empty graph")
	}
	plan, maxBlock, err := planForBudget(gf, cfg.BlockBudget/2)
	if err != nil {
		return nil, err
	}
	ringCap := cfg.BlockBudget / 2 / graph.VIDBytes
	if ringCap > gf.NumEdges() {
		ringCap = gf.NumEdges()
	}
	if ringCap < maxBlock {
		ringCap = maxBlock
	}
	e := &Engine{gf: gf, plan: plan, cfg: cfg, ringCap: ringCap}
	if cfg.ColdCache {
		// The ring reads exactly the runs it needs, ahead of time; kernel
		// readahead past them only hides device time the modeled
		// DRAM-constrained regime would pay.
		_ = gf.AdviseRandom()
	}
	if cfg.Metrics {
		e.metrics = newOOCMetrics()
	}
	if err := e.pinResident(); err != nil {
		return nil, err
	}
	e.pool = pool.New(cfg.Workers)
	e.scratch = make([]*rng.XorShift1024Star, e.pool.Workers())
	for i := range e.scratch {
		e.scratch[i] = rng.NewXorShift1024Star(uint64(i) + 1)
	}
	return e, nil
}

// Close releases the engine's worker pool. The graph file stays open (the
// caller owns it). Idempotent.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.Close()
	}
}

// Plan returns the streaming partition plan.
func (e *Engine) Plan() *part.Plan { return e.plan }

// ResidentBytes returns the DRAM spent on the pinned resident tier.
func (e *Engine) ResidentBytes() uint64 { return e.residentBytes }

// ResidentPartitions returns how many partitions the storage-tier
// knapsack pinned in DRAM.
func (e *Engine) ResidentPartitions() int { return e.residentCount }

// pinResident solves the storage-level knapsack over the plan's
// partitions and eagerly loads the chosen blocks. Value of pinning a
// block = its stream-in time (Storage params) × the probability at least
// one of |V| walkers touches the partition in a step (degree-proportional
// landing approximation); weight = its bytes.
func (e *Engine) pinResident() error {
	e.resident = make([][]graph.VID, e.plan.NumVPs())
	if e.cfg.ResidentBudget == 0 {
		return nil
	}
	totalEdges := float64(e.gf.NumEdges())
	walkers := float64(e.gf.NumVertices())
	classes := make([]profile.ResidentClass, e.plan.NumVPs())
	for vp := range classes {
		vpMeta := e.plan.VPs[vp]
		edges := e.gf.Offsets[vpMeta.End] - e.gf.Offsets[vpMeta.Start]
		bytes := edges * graph.VIDBytes
		touch := 0.0
		if edges > 0 && totalEdges > 0 {
			p := float64(edges) / totalEdges
			if p >= 1 {
				touch = 1
			} else {
				touch = 1 - math.Exp(walkers*math.Log1p(-p))
			}
		}
		classes[vp] = profile.ResidentClass{
			Bytes:   bytes,
			SavedNS: touch * e.cfg.Storage.BlockStreamNS(bytes),
		}
	}
	pinned := profile.PlanResident(classes, e.cfg.ResidentBudget)
	var raw []byte
	sumStreamed := uint64(0)
	for vp, pin := range pinned {
		vpMeta := e.plan.VPs[vp]
		lo, hi := e.gf.Offsets[vpMeta.Start], e.gf.Offsets[vpMeta.End]
		if !pin {
			sumStreamed += hi - lo
			continue
		}
		buf := make([]graph.VID, hi-lo)
		var err error
		raw, err = e.gf.ReadTargetsInto(lo, hi, buf, raw)
		if err != nil {
			return fmt.Errorf("ooc: load resident block %d: %w", vp, err)
		}
		e.resident[vp] = buf
		e.residentBytes += classes[vp].Bytes
		e.residentCount++
	}
	// Ring buffers never need more than the streamed remainder: even a
	// maximally coalesced run cannot exceed the sum of non-pinned blocks.
	if sumStreamed < e.ringCap {
		e.ringCap = sumStreamed
	}
	if m := e.metrics; m != nil {
		m.residentBytes.Set(int64(e.residentBytes))
		m.residentParts.Set(int64(e.residentCount))
	}
	return nil
}

// planForBudget cuts the vertex array into equal power-of-2 DS partitions
// whose largest edge block fits blockBytes.
func planForBudget(gf *graph.File, blockBytes uint64) (*part.Plan, uint64, error) {
	n := gf.NumVertices()
	szLog := uint(0)
	for (uint64(1) << szLog) < uint64(n) {
		szLog++
	}
	// Shrink VP size until every block fits.
	for {
		maxBlock := uint64(0)
		vpSize := graph.VID(1) << szLog
		for start := graph.VID(0); start < n; start += vpSize {
			end := start + vpSize
			if end > n {
				end = n
			}
			if b := gf.Offsets[end] - gf.Offsets[start]; b > maxBlock {
				maxBlock = b
			}
		}
		if maxBlock*graph.VIDBytes <= blockBytes || szLog == 0 {
			if maxBlock*graph.VIDBytes > blockBytes {
				return nil, 0, fmt.Errorf("ooc: a single vertex's adjacency (%dB) exceeds the block budget %dB",
					maxBlock*graph.VIDBytes, blockBytes)
			}
			plan, err := singleGroupPlan(n, szLog)
			if err != nil {
				return nil, 0, err
			}
			return plan, maxBlock, nil
		}
		szLog--
	}
}

// singleGroupPlan builds a one-group uniform DS plan.
func singleGroupPlan(n graph.VID, szLog uint) (*part.Plan, error) {
	groupLog := uint(0)
	for (uint64(1) << groupLog) < uint64(n) {
		groupLog++
	}
	nvp := int((uint64(n) + (1 << szLog) - 1) >> szLog)
	policies := make([]profile.Policy, nvp)
	for i := range policies {
		policies[i] = profile.DS
	}
	plan := &part.Plan{
		V:            n,
		GroupSizeLog: groupLog,
		Groups: []part.GroupPlan{{
			Start: 0, End: n, VPSizeLog: szLog, Policies: policies,
		}},
	}
	if err := part.Finalize(plan); err != nil {
		return nil, err
	}
	return plan, nil
}

// oocItem is one sample work item: a contiguous walker range of one
// partition, with its own RNG seed and the edge block it draws from.
type oocItem struct {
	buf  []graph.VID // edge block (ring buffer or resident)
	base uint64      // first edge index of the block
	lo   uint64      // walker range [lo, hi) in the shuffled array
	hi   uint64
	seed uint64
}

// oocSampleTask is the pool task advancing walkers over delivered blocks:
// workers claim items off a shared counter; every item reseeds the
// worker's scratch RNG with its own (step, partition, sub-shard) seed, so
// claim order — and therefore worker count — never affects trajectories.
type oocSampleTask struct {
	e     *Engine
	next  atomic.Int64
	items []oocItem
	sw    []graph.VID
}

// RunShard implements pool.Task.
func (t *oocSampleTask) RunShard(_, worker, _ int) {
	offs := t.e.gf.Offsets
	src := t.e.scratch[worker]
	for {
		idx := int(t.next.Add(1)) - 1
		if idx >= len(t.items) {
			return
		}
		it := t.items[idx]
		src.Reseed(it.seed)
		chunk := t.sw[it.lo:it.hi]
		for i, v := range chunk {
			off := offs[v]
			d := uint32(offs[v+1] - off)
			if d == 0 {
				continue
			}
			chunk[i] = it.buf[off-it.base+uint64(src.Uint32n(d))]
		}
	}
}

// appendItems cuts one partition's walker chunk into work items exactly
// the way internal/core does — same sub-shard boundaries, same seeds
// (core.SubShardSize / core.SampleSeedAt) — which is what keeps ooc
// trajectories bitwise-identical to the in-memory engine. Every ooc
// chunk is shardable in core's sense: first-order walks, no history
// transition, and DS partitions carry no PS state.
func appendItems(items []oocItem, vp int, lo, hi uint64, prefix uint64, buf []graph.VID, base uint64) []oocItem {
	if hi-lo < 2*core.SubShardSize {
		return append(items, oocItem{buf: buf, base: base, lo: lo, hi: hi,
			seed: core.SampleSeedAt(prefix, vp, 0)})
	}
	a := lo
	for sub := 0; a < hi; sub++ {
		b := a + core.SubShardSize
		if b >= hi || hi-b < core.SubShardSize {
			b = hi // absorb the ragged tail into the last piece
		}
		items = append(items, oocItem{buf: buf, base: base, lo: a, hi: b,
			seed: core.SampleSeedAt(prefix, vp, sub)})
		a = b
	}
	return items
}

// streamJob is one IO run of the prefetch ring: adjacent streamed
// partitions [vp0, vp1) coalesced into a single pread of the edge range
// [lo, hi). Coalescing decouples the IO unit from the partition
// geometry: the plan's uniform power-of-2 cut is sized by the hub
// partition, so a skewed graph yields thousands of KiB-scale tail
// partitions, and one latency-bound read per partition would leave the
// device idle between tiny transfers.
type streamJob struct {
	vp0, vp1 int    // partition range [vp0, vp1) covered by the run
	lo, hi   uint64 // edge index range of the run
}

// blockLoad is one prefetched edge-block run, delivered in job order.
type blockLoad struct {
	job    int
	buf    []graph.VID
	err    error
	readNS int64
}

// Run walks totalWalkers walkers (0 = |V|) for the given steps. ctx
// cancels the run between and during block waits: on cancellation every
// prefetch goroutine is drained before Run returns (no leaks) and
// ctx.Err() is reported. An Engine runs one Run at a time.
func (e *Engine) Run(ctx context.Context, totalWalkers uint64, steps int) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if steps <= 0 {
		return nil, fmt.Errorf("ooc: steps must be positive")
	}
	if totalWalkers == 0 {
		totalWalkers = uint64(e.gf.NumVertices())
	}
	walkers := int(totalWalkers)

	w := make([]graph.VID, walkers)
	sw := make([]graph.VID, walkers)
	wNext := make([]graph.VID, walkers)
	n := e.gf.NumVertices()
	for j := range w {
		w[j] = graph.VID(uint32(j) % n)
	}

	shuffler, err := walk.NewShufflerPool(e.plan, walkers, e.pool)
	if err != nil {
		return nil, err
	}
	res := &Result{Walkers: totalWalkers, Steps: steps, TotalSteps: totalWalkers * uint64(steps)}
	if e.cfg.RecordHistory {
		res.History = walk.NewHistory(walkers)
		if err := res.History.Append(w); err != nil {
			return nil, err
		}
	}

	depth := e.cfg.PrefetchDepth
	ring := make([][]graph.VID, depth)
	for i := range ring {
		ring[i] = make([]graph.VID, e.ringCap)
	}
	task := &oocSampleTask{e: e}
	jobs := make([]streamJob, 0, e.plan.NumVPs())

	if m := e.metrics; m != nil {
		m.runs.Inc()
	}
	start := time.Now()
	for st := 0; st < steps; st++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if e.cfg.ColdCache {
			_ = e.gf.DropCache() // best-effort; no-op off Linux
		}
		if m := e.metrics; m != nil {
			m.steps.Inc()
		}
		if err := shuffler.Forward(w, sw, nil, nil); err != nil {
			return nil, err
		}
		vpStart := shuffler.VPStart()
		prefix := core.SampleSeedPrefix(e.cfg.Seed, 0, st)

		// Resident pass: partitions pinned in DRAM sample with no IO.
		// Streamed partitions with walkers coalesce into IO runs —
		// adjacent blocks merge until a run would outgrow a ring buffer —
		// so each pread stays bandwidth-sized even when the partition
		// geometry is KiB-scale. A resident or walker-free partition
		// breaks the run (its bytes are never read).
		items := task.items[:0]
		jobs = jobs[:0]
		open := false
		for vp := 0; vp < e.plan.NumVPs(); vp++ {
			lo, hi := vpStart[vp], vpStart[vp+1]
			if buf := e.resident[vp]; buf != nil {
				open = false
				if lo == hi {
					continue
				}
				base := e.gf.Offsets[e.plan.VPs[vp].Start]
				items = appendItems(items, vp, lo, hi, prefix, buf, base)
				res.ResidentHits++
				if m := e.metrics; m != nil {
					m.residentHits.Inc()
					m.residentSaved.Add(uint64(len(buf)) * graph.VIDBytes)
				}
				continue
			}
			if lo == hi {
				open = false
				if m := e.metrics; m != nil {
					m.skipped.Inc()
				}
				continue // no walkers here this step: skip the disk read
			}
			vpMeta := e.plan.VPs[vp]
			if m := e.metrics; m != nil {
				m.residentMisses.Inc()
			}
			elo, ehi := e.gf.Offsets[vpMeta.Start], e.gf.Offsets[vpMeta.End]
			if open {
				if run := &jobs[len(jobs)-1]; ehi-run.lo <= e.ringCap {
					run.vp1, run.hi = vp+1, ehi
					continue
				}
			}
			jobs = append(jobs, streamJob{vp0: vp, vp1: vp + 1, lo: elo, hi: ehi})
			open = true
		}
		if err := e.streamStep(ctx, jobs, ring, items, task, sw, vpStart, prefix, res); err != nil {
			return nil, err
		}

		if err := shuffler.Reverse(w, sw, wNext, nil, nil); err != nil {
			return nil, err
		}
		w, wNext = wNext, w
		if e.cfg.RecordHistory {
			if err := res.History.Append(w); err != nil {
				return nil, err
			}
		}
	}
	res.Duration = time.Since(start)
	if m := e.metrics; m != nil {
		res.Report = m.reg.Snapshot()
	}
	return res, nil
}

// streamStep runs one step's prefetch ring: job i is read into ring
// buffer i%depth, gated by a per-buffer token the consumer releases once
// it has sampled the buffer's previous occupant. Each ring slot is owned
// by exactly one IO worker (worker k owns slots s with s%iow == k), and
// an owner works through its slots' jobs in increasing job order — so
// the only goroutine ever waiting on a slot's token is the one holding
// that slot's next in-order job. That static ownership is what makes
// delivery ordered and the ring deadlock-free: a dynamic job claim would
// let a worker holding job i+depth steal the slot token from the worker
// holding job i and deliver out of order. Every goroutine is joined
// before return on all paths — success, read error, or ctx cancellation
// (cancel is deferred after the join so even a panic unwind releases the
// workers first). residentItems (the pinned partitions' walkers) are
// sampled after the first reads are issued, overlapping with the IO.
func (e *Engine) streamStep(ctx context.Context, jobs []streamJob, ring [][]graph.VID,
	residentItems []oocItem, task *oocSampleTask, sw []graph.VID, vpStart []uint64,
	prefix uint64, res *Result) error {
	if len(jobs) == 0 {
		if len(residentItems) > 0 {
			task.items, task.sw = residentItems, sw
			task.next.Store(0)
			e.pool.Submit(task, 0, nil, nil)
		}
		return nil
	}
	depth := len(ring)
	ictx, cancel := context.WithCancel(ctx)

	slots := make([]chan blockLoad, depth)
	bufTok := make([]chan struct{}, depth)
	for i := 0; i < depth; i++ {
		slots[i] = make(chan blockLoad, 1)
		bufTok[i] = make(chan struct{}, 1)
		bufTok[i] <- struct{}{}
	}
	var ready atomic.Int64
	var wg sync.WaitGroup

	iow := e.cfg.IOWorkers
	if iow > len(jobs) {
		iow = len(jobs)
	}
	if iow > depth {
		iow = depth
	}
	for k := 0; k < iow; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			var raw []byte
			for i := 0; i < len(jobs); i++ {
				slot := i % depth
				if slot%iow != k {
					continue // another worker owns this slot
				}
				select {
				case <-bufTok[slot]:
				case <-ictx.Done():
					return
				}
				j := jobs[i]
				buf := ring[slot][:j.hi-j.lo]
				t0 := time.Now()
				var err error
				raw, err = e.gf.ReadTargetsInto(j.lo, j.hi, buf, raw)
				load := blockLoad{job: i, buf: buf, err: err, readNS: int64(time.Since(t0))}
				ready.Add(1)
				select {
				case slots[slot] <- load:
				case <-ictx.Done():
					return
				}
				if err != nil {
					return
				}
			}
		}(k)
	}
	// LIFO: cancel fires before the join, so every exit path — including
	// a panic unwinding through here — releases blocked workers first.
	defer wg.Wait()
	defer cancel()

	if len(residentItems) > 0 {
		task.items, task.sw = residentItems, sw
		task.next.Store(0)
		e.pool.Submit(task, 0, nil, nil)
	}

	for i := range jobs {
		slot := i % depth
		t0 := time.Now()
		var load blockLoad
		select {
		case load = <-slots[slot]:
		case <-ictx.Done():
			return ctx.Err()
		}
		wait := time.Since(t0)
		res.IOWait += wait
		occ := ready.Add(-1) + 1
		if load.err != nil {
			return load.err
		}
		if load.job != i {
			return fmt.Errorf("ooc: prefetch ring delivered job %d where %d was expected", load.job, i)
		}
		blockBytes := uint64(len(load.buf)) * graph.VIDBytes
		res.BytesRead += blockBytes
		res.Blocks++
		if m := e.metrics; m != nil {
			m.ioWaitNS.Add(uint64(wait))
			m.ioReadNS.Add(uint64(load.readNS))
			m.prefetchReady.Observe(uint64(occ))
			m.blocks.Inc()
			m.bytes.Add(blockBytes)
			m.blockBytes.Observe(blockBytes)
			s0 := time.Now()
			e.sampleRun(task, load.buf, jobs[i], vpStart, sw, prefix)
			m.blockSampleNS.Observe(uint64(time.Since(s0)))
		} else {
			e.sampleRun(task, load.buf, jobs[i], vpStart, sw, prefix)
		}
		bufTok[slot] <- struct{}{}
	}
	return nil
}

// sampleRun advances the walkers of every partition in a delivered IO
// run on the worker pool: one submit covers the whole run, each
// partition drawing from its sub-slice of the run buffer. Items are
// seeded per (step, partition, sub-shard) exactly as if the partitions
// had been read one block at a time, so coalescing cannot change
// trajectories.
func (e *Engine) sampleRun(task *oocSampleTask, buf []graph.VID, j streamJob,
	vpStart []uint64, sw []graph.VID, prefix uint64) {
	items := task.items[:0]
	for vp := j.vp0; vp < j.vp1; vp++ {
		lo, hi := vpStart[vp], vpStart[vp+1]
		if lo == hi {
			continue // cannot happen by construction; guard stays cheap
		}
		base := e.gf.Offsets[e.plan.VPs[vp].Start]
		end := e.gf.Offsets[e.plan.VPs[vp].End]
		items = appendItems(items, vp, lo, hi, prefix, buf[base-j.lo:end-j.lo], base)
	}
	task.items, task.sw = items, sw
	task.next.Store(0)
	e.pool.Submit(task, 0, nil, nil)
	task.items = items[:0]
}
