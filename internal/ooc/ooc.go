// Package ooc implements out-of-core random walks on disk-resident
// graphs — the extension the paper plans as future work (§4.5, §7): since
// FlashMob's sample stage consumes each vertex partition's edges as one
// sequential block, the graph can stream from disk through a small DRAM
// window while the (much smaller) walker arrays stay memory-resident. The
// paper estimates a full 80-step DeepWalk needs ~5GB/s of streaming
// bandwidth, within commodity NVMe range.
//
// The engine processes direct-sampling partitions only: pre-sampling's
// per-vertex buffers are themselves edge-sized and would defeat the
// purpose on a disk-resident graph.
package ooc

import (
	"fmt"
	"time"

	"flashmob/internal/graph"
	"flashmob/internal/obs"
	"flashmob/internal/part"
	"flashmob/internal/profile"
	"flashmob/internal/rng"
	"flashmob/internal/walk"
)

// Config tunes the out-of-core engine.
type Config struct {
	// BlockBudget is the DRAM allowance for streamed edge blocks; the
	// engine double-buffers, so each partition's edge block must fit half
	// of it. Default 64 MiB.
	BlockBudget uint64
	// Seed drives sampling.
	Seed uint64
	// Workers parallelizes the shuffle stages (sampling streams one
	// partition at a time by design).
	Workers int
	// RecordHistory keeps the W_i arrays (for tests; memory heavy).
	RecordHistory bool
	// Metrics enables the observability layer: streaming and sampling
	// counters accumulated on a registry and snapshotted into
	// Result.Report. Off by default (see docs/OBSERVABILITY.md).
	Metrics bool
}

// Result reports an out-of-core run.
type Result struct {
	Walkers    uint64
	Steps      int
	TotalSteps uint64
	Duration   time.Duration
	// BytesRead is the total edge-block volume streamed from disk.
	BytesRead uint64
	// IOWait is time spent blocked on disk reads (after overlap with
	// sampling via the prefetch buffer).
	IOWait time.Duration
	// History holds recorded W_i arrays when requested.
	History *walk.History
	// Report is the metrics snapshot of this run (nil unless
	// Config.Metrics; see docs/OBSERVABILITY.md for the field reference).
	Report *obs.Report
}

// PerStepNS returns wall nanoseconds per walker-step.
func (r *Result) PerStepNS() float64 {
	if r.TotalSteps == 0 {
		return 0
	}
	return float64(r.Duration.Nanoseconds()) / float64(r.TotalSteps)
}

// StreamBandwidth returns the effective disk streaming rate in bytes/sec.
func (r *Result) StreamBandwidth() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.BytesRead) / r.Duration.Seconds()
}

// Engine walks a disk-resident graph.
type Engine struct {
	gf   *graph.File
	plan *part.Plan
	cfg  Config
	// maxBlock is the largest partition edge block (entries).
	maxBlock uint64
	// metrics is the observability state (nil unless Config.Metrics).
	metrics *oocMetrics
}

// New prepares an engine over an opened graph file. The partition plan is
// derived from the block budget: uniform power-of-2 DS partitions, each
// small enough that its edge block fits half the budget.
func New(gf *graph.File, cfg Config) (*Engine, error) {
	if gf == nil {
		return nil, fmt.Errorf("ooc: nil graph file")
	}
	if cfg.BlockBudget == 0 {
		cfg.BlockBudget = 64 << 20
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	n := gf.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("ooc: empty graph")
	}
	plan, maxBlock, err := planForBudget(gf, cfg.BlockBudget/2)
	if err != nil {
		return nil, err
	}
	e := &Engine{gf: gf, plan: plan, cfg: cfg, maxBlock: maxBlock}
	if cfg.Metrics {
		e.metrics = newOOCMetrics()
	}
	return e, nil
}

// Plan returns the streaming partition plan.
func (e *Engine) Plan() *part.Plan { return e.plan }

// planForBudget cuts the vertex array into equal power-of-2 DS partitions
// whose largest edge block fits blockBytes.
func planForBudget(gf *graph.File, blockBytes uint64) (*part.Plan, uint64, error) {
	n := gf.NumVertices()
	szLog := uint(0)
	for (uint64(1) << szLog) < uint64(n) {
		szLog++
	}
	// Shrink VP size until every block fits.
	for {
		maxBlock := uint64(0)
		vpSize := graph.VID(1) << szLog
		for start := graph.VID(0); start < n; start += vpSize {
			end := start + vpSize
			if end > n {
				end = n
			}
			if b := gf.Offsets[end] - gf.Offsets[start]; b > maxBlock {
				maxBlock = b
			}
		}
		if maxBlock*4 <= blockBytes || szLog == 0 {
			if maxBlock*4 > blockBytes {
				return nil, 0, fmt.Errorf("ooc: a single vertex's adjacency (%dB) exceeds the block budget %dB",
					maxBlock*4, blockBytes)
			}
			plan, err := singleGroupPlan(n, szLog)
			if err != nil {
				return nil, 0, err
			}
			return plan, maxBlock, nil
		}
		szLog--
	}
}

// singleGroupPlan builds a one-group uniform DS plan.
func singleGroupPlan(n graph.VID, szLog uint) (*part.Plan, error) {
	groupLog := uint(0)
	for (uint64(1) << groupLog) < uint64(n) {
		groupLog++
	}
	nvp := int((uint64(n) + (1 << szLog) - 1) >> szLog)
	policies := make([]profile.Policy, nvp)
	for i := range policies {
		policies[i] = profile.DS
	}
	plan := &part.Plan{
		V:            n,
		GroupSizeLog: groupLog,
		Groups: []part.GroupPlan{{
			Start: 0, End: n, VPSizeLog: szLog, Policies: policies,
		}},
	}
	if err := part.Finalize(plan); err != nil {
		return nil, err
	}
	return plan, nil
}

// blockLoad is one prefetched partition edge block.
type blockLoad struct {
	vp   int
	buf  []graph.VID
	base uint64 // first edge index of the block
	err  error
}

// Run walks totalWalkers walkers (0 = |V|) for the given steps.
func (e *Engine) Run(totalWalkers uint64, steps int) (*Result, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("ooc: steps must be positive")
	}
	if totalWalkers == 0 {
		totalWalkers = uint64(e.gf.NumVertices())
	}
	walkers := int(totalWalkers)

	w := make([]graph.VID, walkers)
	sw := make([]graph.VID, walkers)
	wNext := make([]graph.VID, walkers)
	n := e.gf.NumVertices()
	for j := range w {
		w[j] = graph.VID(uint32(j) % n)
	}

	shuffler, err := walk.NewShuffler(e.plan, walkers, e.cfg.Workers)
	if err != nil {
		return nil, err
	}
	res := &Result{Walkers: totalWalkers, Steps: steps, TotalSteps: totalWalkers * uint64(steps)}
	if e.cfg.RecordHistory {
		res.History = walk.NewHistory(walkers)
		if err := res.History.Append(w); err != nil {
			return nil, err
		}
	}

	src := rng.NewXorShift1024Star(e.cfg.Seed)
	bufA := make([]graph.VID, e.maxBlock)
	bufB := make([]graph.VID, e.maxBlock)

	if m := e.metrics; m != nil {
		m.runs.Inc()
	}
	start := time.Now()
	for st := 0; st < steps; st++ {
		if m := e.metrics; m != nil {
			m.steps.Inc()
		}
		if err := shuffler.Forward(w, sw, nil, nil); err != nil {
			return nil, err
		}
		vpStart := shuffler.VPStart()

		// Stream partitions with one block of lookahead. The channel is
		// unbuffered and the producer alternates two buffers, so it only
		// overwrites a buffer after the consumer has moved to the other
		// one: block k+1 loads from disk while block k is being sampled.
		loads := make(chan blockLoad)
		go e.prefetch(vpStart, bufA, bufB, loads)
		for {
			t0 := time.Now()
			load, ok := <-loads
			if !ok {
				break
			}
			wait := time.Since(t0)
			res.IOWait += wait
			if load.err != nil {
				return nil, load.err
			}
			blockBytes := uint64(len(load.buf)) * 4
			res.BytesRead += blockBytes
			if m := e.metrics; m != nil {
				m.ioWaitNS.Add(uint64(wait))
				m.blocks.Inc()
				m.bytes.Add(blockBytes)
				m.blockBytes.Observe(blockBytes)
				s0 := time.Now()
				e.sampleBlock(load, sw[vpStart[load.vp]:vpStart[load.vp+1]], src)
				m.blockSampleNS.Observe(uint64(time.Since(s0)))
			} else {
				e.sampleBlock(load, sw[vpStart[load.vp]:vpStart[load.vp+1]], src)
			}
		}

		if err := shuffler.Reverse(w, sw, wNext, nil, nil); err != nil {
			return nil, err
		}
		w, wNext = wNext, w
		if e.cfg.RecordHistory {
			if err := res.History.Append(w); err != nil {
				return nil, err
			}
		}
	}
	res.Duration = time.Since(start)
	if m := e.metrics; m != nil {
		res.Report = m.reg.Snapshot()
	}
	return res, nil
}

// prefetch loads each non-empty partition's edge block in order,
// alternating between the two buffers so the consumer can sample one block
// while the next loads.
func (e *Engine) prefetch(vpStart []uint64, bufA, bufB []graph.VID, out chan<- blockLoad) {
	defer close(out)
	bufs := [2][]graph.VID{bufA, bufB}
	which := 0
	for vp := 0; vp < e.plan.NumVPs(); vp++ {
		if vpStart[vp] == vpStart[vp+1] {
			if m := e.metrics; m != nil {
				m.skipped.Inc()
			}
			continue // no walkers here this step: skip the disk read
		}
		vpMeta := e.plan.VPs[vp]
		lo := e.gf.Offsets[vpMeta.Start]
		hi := e.gf.Offsets[vpMeta.End]
		buf := bufs[which][:hi-lo]
		which ^= 1
		err := e.gf.ReadTargets(lo, hi, buf)
		out <- blockLoad{vp: vp, buf: buf, base: lo, err: err}
		if err != nil {
			return
		}
	}
}

// sampleBlock advances every walker of one partition using the streamed
// edge block.
func (e *Engine) sampleBlock(load blockLoad, chunk []graph.VID, src rng.Source) {
	gf := e.gf
	for i, v := range chunk {
		d := gf.Degree(v)
		if d == 0 {
			continue
		}
		idx := gf.Offsets[v] - load.base + uint64(rng.Uint32n(src, d))
		chunk[i] = load.buf[idx]
	}
}
