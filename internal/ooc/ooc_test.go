package ooc

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"

	"flashmob/internal/gen"
	"flashmob/internal/graph"
)

// writeGraph builds an undirected power-law graph and writes it to disk,
// returning the open file plus the in-memory reference.
func writeGraph(t *testing.T, n uint32, seed uint64) (*graph.File, *graph.CSR) {
	t.Helper()
	dir, err := gen.PowerLaw(gen.PowerLawConfig{
		NumVertices: n, AvgDegree: 6, Alpha: 0.7, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var edges []graph.Edge
	for v := uint32(0); v < dir.NumVertices(); v++ {
		for _, w := range dir.Neighbors(v) {
			if v != w {
				edges = append(edges, graph.Edge{Src: v, Dst: w})
			}
		}
	}
	res, err := graph.Build(edges, graph.BuildOptions{Undirected: true, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.SortByDegreeDesc(res.Graph).Graph
	path := filepath.Join(t.TempDir(), "graph.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteBinary(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	gf, err := graph.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gf.Close() })
	return gf, g
}

func TestOOCValidWalks(t *testing.T) {
	gf, g := writeGraph(t, 2000, 1)
	e, err := New(gf, Config{BlockBudget: 8 << 10, Seed: 2, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res, err := e.Run(context.Background(), 3000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSteps != 30000 {
		t.Fatalf("TotalSteps = %d", res.TotalSteps)
	}
	h := res.History
	for j := 0; j < h.NumWalkers(); j++ {
		for i := 0; i+1 < h.NumSteps(); i++ {
			u, v := h.At(i, j), h.At(i+1, j)
			if u == v && g.Degree(u) == 0 {
				continue
			}
			if !g.HasEdge(u, v) {
				t.Fatalf("walker %d step %d: %d→%d not an edge", j, i, u, v)
			}
		}
	}
	if res.BytesRead == 0 {
		t.Error("no bytes streamed")
	}
	if res.StreamBandwidth() <= 0 {
		t.Error("bandwidth not positive")
	}
}

func TestOOCStationaryDistribution(t *testing.T) {
	// The out-of-core engine runs the identical stochastic process: visit
	// shares must approach deg/Σdeg on an undirected graph.
	gf, g := writeGraph(t, 300, 3)
	e, err := New(gf, Config{BlockBudget: 32 << 10, Seed: 4, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res, err := e.Run(context.Background(), 40000, 12)
	if err != nil {
		t.Fatal(err)
	}
	h := res.History
	counts := make([]float64, g.NumVertices())
	last := h.NumSteps() - 1
	for j := 0; j < h.NumWalkers(); j++ {
		counts[h.At(last, j)]++
	}
	sumDeg := float64(g.NumEdges())
	for v := uint32(0); v < 8; v++ {
		want := float64(g.Degree(v)) / sumDeg
		got := counts[v] / float64(h.NumWalkers())
		if want > 0.01 && math.Abs(got-want) > 0.25*want {
			t.Errorf("vertex %d: share %.4f, stationary %.4f", v, got, want)
		}
	}
}

func TestOOCTinyBudgetManyPartitions(t *testing.T) {
	// A budget barely above the largest adjacency forces many partitions;
	// the walk must still be exact.
	gf, g := writeGraph(t, 500, 5)
	maxAdj := uint64(0)
	for v := uint32(0); v < g.NumVertices(); v++ {
		if d := uint64(g.Degree(v)); d > maxAdj {
			maxAdj = d
		}
	}
	e, err := New(gf, Config{BlockBudget: maxAdj * 4 * 3, Seed: 6, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Plan().NumVPs() < 8 {
		t.Fatalf("expected many partitions under tiny budget, got %d", e.Plan().NumVPs())
	}
	res, err := e.Run(context.Background(), 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	h := res.History
	for j := 0; j < h.NumWalkers(); j++ {
		for i := 0; i+1 < h.NumSteps(); i++ {
			u, v := h.At(i, j), h.At(i+1, j)
			if u == v && g.Degree(u) == 0 {
				continue
			}
			if !g.HasEdge(u, v) {
				t.Fatalf("%d→%d not an edge", u, v)
			}
		}
	}
}

func TestOOCBudgetTooSmall(t *testing.T) {
	gf, _ := writeGraph(t, 500, 7)
	if _, err := New(gf, Config{BlockBudget: 8}); err == nil {
		t.Fatal("impossible budget accepted")
	}
}

func TestOOCSkipsEmptyPartitions(t *testing.T) {
	// With a single walker, at most one block is streamed per step.
	gf, _ := writeGraph(t, 2000, 8)
	e, err := New(gf, Config{BlockBudget: 16 << 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res, err := e.Run(context.Background(), 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Total volume must be far below 10 full-graph scans.
	fullScan := gf.NumEdges() * 4
	if res.BytesRead >= fullScan*2 {
		t.Errorf("streamed %dB for one walker; empty partitions not skipped (full scan = %dB)",
			res.BytesRead, fullScan)
	}
}

func TestOOCErrors(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil file accepted")
	}
	gf, _ := writeGraph(t, 100, 10)
	e, err := New(gf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Run(context.Background(), 10, 0); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestOOCDefaultWalkers(t *testing.T) {
	gf, _ := writeGraph(t, 128, 11)
	e, err := New(gf, Config{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res, err := e.Run(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Walkers != uint64(gf.NumVertices()) {
		t.Errorf("walkers = %d, want |V|", res.Walkers)
	}
}
