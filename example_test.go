package flashmob_test

import (
	"fmt"
	"log"

	"flashmob"
)

// Example demonstrates the minimal walk workflow: generate (or load) a
// graph, build a System (which sorts, partitions, and plans), and walk.
func Example() {
	g, err := flashmob.Generate("YT", 2000, 42) // ~570-vertex YouTube-shaped graph
	if err != nil {
		log.Fatal(err)
	}
	sys, err := flashmob.New(g, flashmob.Options{
		Algorithm:   flashmob.DeepWalk(),
		Seed:        42,
		RecordPaths: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Walk(100, 5)
	if err != nil {
		log.Fatal(err)
	}
	paths, err := res.Paths()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(paths), "paths of length", len(paths[0]))
	// Output: 100 paths of length 6
}

// ExampleOptions_edgeStream shows the streaming output mode: sampled edges
// are delivered step by step instead of retaining history.
func ExampleOptions_edgeStream() {
	g, err := flashmob.Generate("YT", 2000, 7)
	if err != nil {
		log.Fatal(err)
	}
	var edges int
	sys, err := flashmob.New(g, flashmob.Options{
		Seed: 7,
		EdgeStream: func(step int, cur, next []flashmob.VID) {
			edges += len(cur)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Walk(50, 4); err != nil {
		log.Fatal(err)
	}
	fmt.Println(edges, "edges streamed")
	// Output: 200 edges streamed
}

// ExampleSystem_Plan inspects the MCKP auto-configuration.
func ExampleSystem_Plan() {
	g, err := flashmob.Generate("TW", 20000, 3) // heavy-tailed graph
	if err != nil {
		log.Fatal(err)
	}
	sys, err := flashmob.New(g, flashmob.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	p := sys.Plan()
	fmt.Println(p.PSVertices+p.DSVertices == g.NumVertices())
	fmt.Println(p.Bins <= 2048)
	// Output:
	// true
	// true
}
